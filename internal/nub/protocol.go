// Package nub implements ldb's debug nub and the little-endian
// communication protocol between ldb and the nub (§4.2 of the paper).
//
// The nub is loaded with the target program (here: attached to the
// simulated process); at startup it gets control from the pause trap in
// the startup code, and thereafter a signal handler gets control when
// the target faults or hits a breakpoint. The nub notifies ldb of the
// signal — passing a signal number, an associated code, and a context
// holding the registers — then services fetch and store requests until
// told to continue execution, to terminate, or to break the connection.
// When a connection breaks, even by a debugger crash, the nub preserves
// the state of the target program and waits for a new connection.
//
// Deliberately, the protocol does not mention breakpoints or
// single-stepping (§6): breakpoints are implemented entirely in ldb
// using fetches and stores.
package nub

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MsgKind identifies a protocol message.
type MsgKind uint8

// Requests (debugger → nub) and replies/events (nub → debugger).
const (
	// requests
	MHello MsgKind = iota + 1
	MFetchInt
	MStoreInt
	MFetchFloat
	MStoreFloat
	MFetchBytes
	MStoreBytes
	MContinue
	MKill
	MDetach
	// §7.1's protocol enrichment: stores used only for planting
	// breakpoints, so the nub can report to a NEW debugger the
	// instructions overwritten by a lost one.
	MPlantStore
	MUnplantStore
	MListPlanted
	// MBatch is an envelope carrying N requests whose N replies come
	// back in one MBatchReply — one round trip instead of N. It adds no
	// new concepts to the protocol: the envelope carries ordinary
	// messages, and a nub that does not advertise batch support in its
	// welcome is simply driven one message at a time.
	MBatch
	// MFetchLine is the client cache's readahead vehicle: fetch UP TO
	// Size bytes at Addr, truncated where the containing segment ends,
	// instead of failing the way an exact fetch must. It never carries
	// user-visible semantics — the client issues it only speculatively
	// and falls back to exact fetches when the line comes up short —
	// and it rides the same WelcomeBatch capability bit, so a nub that
	// never advertised the bit is never sent one.
	MFetchLine
	// replies and events
	MWelcome
	MValue
	MFValue
	MBytes
	MOK
	MError
	MEvent
	MExited
	MPlanted
	MBatchReply
	// MSimStats asks the nub for its simulator counters — instructions
	// executed and decode-cache activity — which come back as an
	// MSimStatsReply carrying five little-endian 64-bit values (steps,
	// hits, decodes, invalidations, fallbacks). Purely informational:
	// it rides the batch capability bit, so a legacy nub refuses it
	// like any unknown request, and the client degrades to printing
	// nothing.
	MSimStats
	MSimStatsReply
	// MServerStats asks the nub for its robustness counters — recovered
	// panics, malformed frames, oversize rejects, slow reads, context
	// faults — which come back as an MServerStatsReply carrying five
	// little-endian 64-bit values. Like MSimStats it is informational and
	// rides the batch capability bit.
	MServerStats
	MServerStatsReply
	// MStepInst resumes the target for exactly one instruction: the
	// machine-level single step that degraded-mode debugging needs when
	// no symbol table is available to plant stepping breakpoints from.
	// The nub answers with the usual event message; a step that retires
	// without faulting reports SIGTRAP with code arch.TrapStep. Rides the
	// batch capability bit; like MContinue it may not travel in a batch.
	MStepInst
	// Session requests, understood only by the multi-session debug
	// service (WelcomeSessions in the welcome's Val). MOpenSession spawns
	// a fresh target from the service's program registry (Data names the
	// program) and binds the connection to it; MAttachSession (Val
	// carries the session id) re-binds a connection — typically a
	// reconnecting client — to a live session; MCloseSession kills the
	// bound session and releases its pool slot. Open and attach answer
	// with MSession (Val the id, Data the arch name, Addr/Size the
	// context record) followed by the session's pending stop event,
	// mirroring the single-target welcome handshake. MServiceStats asks
	// for service-wide health counters, answered by MServiceStatsReply
	// (eight little-endian 64-bit values; see Client.ServiceStats). A
	// legacy nub never advertises the bit and refuses all four like any
	// unknown request.
	MOpenSession
	MAttachSession
	MCloseSession
	MServiceStats
	MSession
	MServiceStatsReply
)

// kindInfo is one kind's row in the protocol's single source of truth:
// its wire name, whether it is a request (debugger → nub), whether it
// carries a space operand that must name the code or data space, and
// whether replaying it after a connection loss cannot change target
// state.
type kindInfo struct {
	name       string
	request    bool
	space      bool
	idempotent bool
}

// kinds is the protocol's kind table. Every MsgKind constant must have
// a row here: String, checkRequest, and reqIdempotent all read it, and
// the wireproto analyzer proves it total and proves every request row
// has a dispatch arm and a client encoder — adding a kind without
// finishing its plumbing fails the build.
//
//ldb:kind-table
var kinds = map[MsgKind]kindInfo{
	MHello:      {name: "hello", request: true, idempotent: true},
	MFetchInt:   {name: "fetchint", request: true, space: true, idempotent: true},
	MStoreInt:   {name: "storeint", request: true, space: true},
	MFetchFloat: {name: "fetchfloat", request: true, space: true, idempotent: true},
	MStoreFloat: {name: "storefloat", request: true, space: true},
	MFetchBytes: {name: "fetchbytes", request: true, space: true, idempotent: true},
	MStoreBytes: {name: "storebytes", request: true, space: true},
	MContinue:   {name: "continue", request: true},
	MKill:       {name: "kill", request: true},
	MDetach:     {name: "detach", request: true},
	// Plants and unplants change what MListPlanted reports: replaying a
	// delivered plant would record the trap itself as the "original"
	// instruction.
	MPlantStore:   {name: "plantstore", request: true, space: true},
	MUnplantStore: {name: "unplantstore", request: true, space: true},
	MListPlanted:  {name: "listplanted", request: true, idempotent: true},
	// An MBatch envelope is idempotent exactly when every member is;
	// reqIdempotent handles it specially.
	MBatch:            {name: "batch", request: true},
	MFetchLine:        {name: "fetchline", request: true, space: true, idempotent: true},
	MSimStats:         {name: "simstats", request: true, idempotent: true},
	MServerStats:      {name: "serverstats", request: true, idempotent: true},
	MStepInst:         {name: "stepinst", request: true},
	MWelcome:          {name: "welcome"},
	MValue:            {name: "value"},
	MFValue:           {name: "fvalue"},
	MBytes:            {name: "bytes"},
	MOK:               {name: "ok"},
	MError:            {name: "error"},
	MEvent:            {name: "event"},
	MExited:           {name: "exited"},
	MPlanted:          {name: "planted"},
	MBatchReply:       {name: "batchreply"},
	MSimStatsReply:    {name: "simstatsreply"},
	MServerStatsReply: {name: "serverstatsreply"},
	// MOpenSession spawns a process; replaying a delivered one after a
	// reconnect would spawn a second. MCloseSession kills the session —
	// also not replayable. MAttachSession only re-binds the connection
	// and re-reports the latched event, so a reconnecting client may
	// replay it freely.
	MOpenSession:       {name: "opensession", request: true},
	MAttachSession:     {name: "attachsession", request: true, idempotent: true},
	MCloseSession:      {name: "closesession", request: true},
	MServiceStats:      {name: "servicestats", request: true, idempotent: true},
	MSession:           {name: "session"},
	MServiceStatsReply: {name: "servicestatsreply"},
}

func (k MsgKind) String() string {
	if info, ok := kinds[k]; ok {
		return info.name
	}
	return fmt.Sprintf("msg(%d)", uint8(k))
}

// Msg is one protocol message. All integer fields travel little-endian
// regardless of either machine's byte order; the protocol has been used
// on all combinations of host and target byte orders (§4.2).
type Msg struct {
	Kind  MsgKind
	Space byte   // 'c' or 'd' for memory requests
	Size  uint32 // access size
	Addr  uint32
	Val   uint64 // integer value or float bits
	Code  int32  // signal code / error code / exit status
	Sig   int32  // signal number in events
	Data  []byte // bytes payload; arch name in Welcome
}

// maxDataLen bounds a message's byte payload.
const maxDataLen = 1 << 20

// errOversize marks a frame whose declared payload length exceeds
// maxDataLen. The reader rejects such frames before allocating, and the
// server closes the connection rather than drain an attacker-chosen
// number of bytes.
var errOversize = errors.New("nub: message payload too large")

// CodeRolledBack is the MError code the debug service attaches when a
// request crashed mid-flight and the session was rolled back to its
// last checkpoint. The rollback restores exactly the state before the
// request, so the client may simply retry it — stores, plants, and
// resumes included, which a plain connection loss never permits.
const CodeRolledBack int32 = 1

// WelcomeBatch is the capability bit in a welcome message's Val field:
// the nub understands MBatch envelopes. A zero Val — what every nub
// sent before batching existed — means one message at a time.
const WelcomeBatch = 1 << 0

// WelcomeSessions is the capability bit for the multi-session debug
// service: the server understands MOpenSession/MAttachSession/
// MCloseSession/MServiceStats. A client that never sees the bit never
// sends a session request, and a legacy client that ignores it debugs
// the service's legacy target exactly as before.
const WelcomeSessions = 1 << 1

// MaxBatch bounds how many messages one MBatch envelope may carry.
const MaxBatch = 512

// WriteMsg encodes m to w in the little-endian wire format.
func WriteMsg(w io.Writer, m *Msg) error {
	if len(m.Data) > maxDataLen {
		return fmt.Errorf("nub: message payload too large (%d)", len(m.Data))
	}
	var hdr [27]byte
	hdr[0] = byte(m.Kind)
	hdr[1] = m.Space
	binary.LittleEndian.PutUint32(hdr[2:], m.Size)
	binary.LittleEndian.PutUint32(hdr[6:], m.Addr)
	binary.LittleEndian.PutUint64(hdr[10:], m.Val)
	binary.LittleEndian.PutUint32(hdr[18:], uint32(m.Code))
	binary.LittleEndian.PutUint32(hdr[22:], uint32(m.Sig))
	hdr[26] = 0 // reserved
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(m.Data)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	if len(m.Data) > 0 {
		if _, err := w.Write(m.Data); err != nil {
			return err
		}
	}
	return nil
}

// ReadMsg decodes one message from r.
func ReadMsg(r io.Reader) (*Msg, error) {
	var first [1]byte
	if _, err := io.ReadFull(r, first[:]); err != nil {
		return nil, err
	}
	return readMsgRest(first[0], r)
}

// readMsgRest decodes the remainder of a message whose first header
// byte has already been read. The split exists for the server's
// slowloris defence: the idle wait for a request's first byte is
// unbounded (a debugger may sit at its prompt forever), but once a
// frame has started the rest must arrive under a deadline.
func readMsgRest(first byte, r io.Reader) (*Msg, error) {
	var hdr [27]byte
	hdr[0] = first
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, err
	}
	m := &Msg{
		Kind:  MsgKind(hdr[0]),
		Space: hdr[1],
		Size:  binary.LittleEndian.Uint32(hdr[2:]),
		Addr:  binary.LittleEndian.Uint32(hdr[6:]),
		Val:   binary.LittleEndian.Uint64(hdr[10:]),
		Code:  int32(binary.LittleEndian.Uint32(hdr[18:])),
		Sig:   int32(binary.LittleEndian.Uint32(hdr[22:])),
	}
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, err
	}
	dlen := binary.LittleEndian.Uint32(n[:])
	if dlen > maxDataLen {
		return nil, fmt.Errorf("%w (%d)", errOversize, dlen)
	}
	if dlen > 0 {
		m.Data = make([]byte, dlen)
		if _, err := io.ReadFull(r, m.Data); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// reqIdempotent reports whether re-executing the request on the nub
// after a connection loss cannot change target state: fetches and
// listings may be replayed freely, but stores, plants, and the control
// messages must not be (a replayed continue would run the target
// twice). The kind table is the source of truth; an MBatch envelope is
// idempotent exactly when every member is.
func reqIdempotent(m *Msg) bool {
	if m.Kind == MBatch {
		subs, err := DecodeBatch(m)
		if err != nil {
			return false
		}
		for _, sub := range subs {
			if !reqIdempotent(sub) {
				return false
			}
		}
		return true
	}
	info, ok := kinds[m.Kind]
	return ok && info.request && info.idempotent
}

// EncodeBatch wraps msgs in an MBatch (or, from the nub, MBatchReply)
// envelope: Val carries the count, Data the concatenated wire encodings
// of the members. Envelopes do not nest.
func EncodeBatch(kind MsgKind, msgs []*Msg) (*Msg, error) {
	if kind != MBatch && kind != MBatchReply {
		return nil, fmt.Errorf("nub: %v is not a batch envelope kind", kind)
	}
	if len(msgs) == 0 || len(msgs) > MaxBatch {
		return nil, fmt.Errorf("nub: batch of %d messages (limit %d)", len(msgs), MaxBatch)
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if m.Kind == MBatch || m.Kind == MBatchReply {
			return nil, fmt.Errorf("nub: batches do not nest")
		}
		if err := WriteMsg(&buf, m); err != nil {
			return nil, err
		}
	}
	if buf.Len() > maxDataLen {
		return nil, fmt.Errorf("nub: batch payload too large (%d)", buf.Len())
	}
	return &Msg{Kind: kind, Val: uint64(len(msgs)), Data: buf.Bytes()}, nil
}

// DecodeBatch unpacks an MBatch or MBatchReply envelope. Malformed
// envelopes — wrong counts, truncated members, trailing garbage, nested
// batches — yield errors, never panics.
func DecodeBatch(env *Msg) ([]*Msg, error) {
	if env.Kind != MBatch && env.Kind != MBatchReply {
		return nil, fmt.Errorf("nub: %v is not a batch envelope", env.Kind)
	}
	if env.Val == 0 || env.Val > MaxBatch {
		return nil, fmt.Errorf("nub: batch claims %d messages (limit %d)", env.Val, MaxBatch)
	}
	r := bytes.NewReader(env.Data)
	msgs := make([]*Msg, 0, env.Val)
	for i := uint64(0); i < env.Val; i++ {
		m, err := ReadMsg(r)
		if err != nil {
			return nil, fmt.Errorf("nub: batch member %d: truncated or malformed: %w", i, err)
		}
		if m.Kind == MBatch || m.Kind == MBatchReply {
			return nil, fmt.Errorf("nub: batch member %d: batches do not nest", i)
		}
		msgs = append(msgs, m)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("nub: %d trailing bytes after batch members", r.Len())
	}
	return msgs, nil
}
