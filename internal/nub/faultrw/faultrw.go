// Package faultrw wraps an io.ReadWriter in a deterministic fault
// injector for testing the nub wire's robustness. From a seeded PRNG
// it schedules connection drops, mid-message truncations, short
// (chunked) writes, and read delays, so a test can subject a debug
// session to a repeatable storm of transport failures and assert that
// the client's reconnect/replay machinery hides every one of them.
//
// Determinism is the point: the schedule is a function of the seed and
// the byte stream alone. Drop points are chosen by cumulative byte
// count, not by call count — the number of Read calls a TCP stream
// takes to deliver the same bytes varies run to run, but the bytes
// themselves do not.
package faultrw

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the error a wrapped connection returns once the
// injector has killed it. Tests can tell injected failures from real
// ones with errors.Is.
var ErrInjected = errors.New("faultrw: injected connection failure")

// Config selects which faults an Injector schedules.
type Config struct {
	// DropEvery > 0 kills the connection roughly every DropEvery
	// bytes (uniformly in [DropEvery/2, 3·DropEvery/2), drawn from
	// the seeded PRNG). Bytes in both directions count.
	DropEvery int64
	// TruncateWrites makes each drop that lands on a Write deliver a
	// random prefix of the buffer before failing, so the peer sees a
	// mid-message truncation rather than a clean break.
	TruncateWrites bool
	// ChunkWrites splits every Write into several smaller writes,
	// exercising short-write handling in the peer's reader.
	ChunkWrites bool
	// Delay and DelayEvery > 0 sleep Delay after roughly every
	// DelayEvery bytes read, simulating a slow or congested wire.
	Delay      time.Duration
	DelayEvery int64
}

// Injector owns the fault schedule. One Injector may Wrap many
// connections in turn — its byte counters and PRNG persist across
// reconnections, so the schedule keeps advancing through a session's
// whole lifetime rather than resetting on every redial.
type Injector struct {
	mu    sync.Mutex //ldb:lock faultrw.injector 42
	cfg   Config
	rng   *rand.Rand
	gate  func() bool
	bytes int64 // cumulative bytes both directions, all connections
	next  int64 // byte count at which the next drop fires
	sched []string
}

// New builds an Injector whose schedule is fully determined by seed
// and cfg.
func New(seed int64, cfg Config) *Injector {
	inj := &Injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	inj.next = inj.drawNext(0)
	return inj
}

// SetGate installs a predicate consulted (outside the injector's
// mutex) before a drop is allowed to fire; while it returns false the
// drop is deferred until the next Read or Write that finds the gate
// open. The byte threshold still advances deterministically — the gate
// shifts where a drop lands, never whether the schedule is consumed.
// A client exposes exactly this as Replayable(): faults then land only
// in windows the reconnect machinery can hide.
func (inj *Injector) SetGate(gate func() bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.gate = gate
}

// Schedule returns a log of every fault fired, for comparing runs.
func (inj *Injector) Schedule() []string {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]string(nil), inj.sched...)
}

func (inj *Injector) drawNext(at int64) int64 {
	if inj.cfg.DropEvery <= 0 {
		return -1
	}
	return at + inj.cfg.DropEvery/2 + inj.rng.Int63n(inj.cfg.DropEvery)
}

// Wrap returns conn with the injector's faults applied. The wrapper
// implements Read, Write, and Close only — deliberately not
// SetDeadline, so a client driving it falls back to its watchdog
// timer and that path gets exercised too.
func (inj *Injector) Wrap(conn io.ReadWriteCloser) *Conn {
	return &Conn{inj: inj, conn: conn}
}

// Conn is one wrapped connection.
type Conn struct {
	inj  *Injector
	conn io.ReadWriteCloser
	mu   sync.Mutex //ldb:lock faultrw.conn 43
	dead bool
}

// shouldDrop advances the byte counters and decides whether a drop
// fires within this call's n bytes. It returns how many bytes to let
// through before failing (only meaningful for writes, and only when
// truncation is on).
func (inj *Injector) shouldDrop(n int, dir string) (drop bool, keep int) {
	gate := func() bool { return true }
	inj.mu.Lock()
	if inj.gate != nil {
		gate = inj.gate
	}
	start := inj.bytes
	inj.bytes += int64(n)
	due := inj.next >= 0 && inj.bytes >= inj.next
	inj.mu.Unlock()

	// The gate runs outside the mutex: it may read client state whose
	// accessors take their own locks.
	if !due || !gate() {
		return false, n
	}

	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.next < 0 || inj.bytes < inj.next { // raced with another drop
		return false, n
	}
	keep = int(inj.next - start)
	if keep < 0 {
		keep = 0
	}
	if keep > n {
		keep = n
	}
	inj.sched = append(inj.sched, fmt.Sprintf("drop at %d bytes (%s, kept %d/%d)", inj.next, dir, keep, n))
	inj.next = inj.drawNext(inj.bytes)
	return true, keep
}

func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	c.mu.Unlock()

	n, err := c.conn.Read(p)

	if cfg := c.inj.cfg; cfg.Delay > 0 && cfg.DelayEvery > 0 && n > 0 {
		c.inj.mu.Lock()
		fire := (c.inj.bytes+int64(n))/cfg.DelayEvery != c.inj.bytes/cfg.DelayEvery
		c.inj.mu.Unlock()
		if fire {
			time.Sleep(cfg.Delay)
		}
	}

	if drop, _ := c.inj.shouldDrop(n, "read"); drop {
		c.kill()
		return 0, ErrInjected
	}
	return n, err
}

func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	c.mu.Unlock()

	drop, keep := c.inj.shouldDrop(len(p), "write")
	if drop {
		if c.inj.cfg.TruncateWrites && keep > 0 {
			// Deliver a prefix so the peer reads a truncated message
			// instead of seeing a clean close.
			_, _ = c.writeChunked(p[:keep])
		}
		c.kill()
		return 0, ErrInjected
	}
	return c.writeChunked(p)
}

// writeChunked forwards p, split into several smaller writes when
// ChunkWrites is on, so the peer's io.ReadFull loops see short reads.
func (c *Conn) writeChunked(p []byte) (int, error) {
	if !c.inj.cfg.ChunkWrites || len(p) < 2 {
		return c.conn.Write(p)
	}
	total := 0
	for len(p) > 0 {
		c.inj.mu.Lock()
		n := 1 + c.inj.rng.Intn(min(len(p), 16))
		c.inj.mu.Unlock()
		w, err := c.conn.Write(p[:n])
		total += w
		if err != nil {
			return total, err
		}
		p = p[n:]
	}
	return total, nil
}

// kill closes the underlying connection and poisons the wrapper; the
// peer sees EOF (or a truncated message), the local side ErrInjected.
func (c *Conn) kill() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.dead {
		c.dead = true
		_ = c.conn.Close()
	}
}

// Close closes the underlying connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dead = true
	return c.conn.Close()
}
