package faultrw

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// sinkConn is an in-memory ReadWriteCloser: writes accumulate,
// reads drain a preloaded buffer.
type sinkConn struct {
	in  bytes.Reader
	out bytes.Buffer
}

func (s *sinkConn) Read(p []byte) (int, error)  { return s.in.Read(p) }
func (s *sinkConn) Write(p []byte) (int, error) { return s.out.Write(p) }
func (s *sinkConn) Close() error                { return nil }

// drive pushes a fixed byte stream through a wrapped connection and
// returns the fault schedule. The stream is deterministic, so the
// schedule must be a pure function of the seed.
func drive(seed int64, cfg Config, gate func() bool) []string {
	inj := New(seed, cfg)
	if gate != nil {
		inj.SetGate(gate)
	}
	payload := bytes.Repeat([]byte("retargetable"), 40)
	for conn := 0; conn < 8; conn++ {
		s := &sinkConn{}
		s.in.Reset(bytes.Repeat([]byte("nub"), 300))
		c := inj.Wrap(s)
		for {
			if _, err := c.Write(payload); err != nil {
				break
			}
			if _, err := io.CopyN(io.Discard, c, 64); err != nil {
				break
			}
		}
	}
	return inj.Schedule()
}

func TestSameSeedSameSchedule(t *testing.T) {
	cfg := Config{DropEvery: 700, TruncateWrites: true, ChunkWrites: true}
	a := drive(42, cfg, nil)
	b := drive(42, cfg, nil)
	if len(a) == 0 {
		t.Fatal("no faults fired; the test exercises nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule[%d]: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestDifferentSeedDifferentSchedule(t *testing.T) {
	cfg := Config{DropEvery: 700, TruncateWrites: true, ChunkWrites: true}
	a := drive(1, cfg, nil)
	b := drive(2, cfg, nil)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

func TestClosedGateDefersDrops(t *testing.T) {
	cfg := Config{DropEvery: 100}
	sched := drive(7, cfg, func() bool { return false })
	if len(sched) != 0 {
		t.Fatalf("gate closed, yet %d faults fired: %v", len(sched), sched)
	}
}

func TestDroppedConnStaysDead(t *testing.T) {
	inj := New(3, Config{DropEvery: 16})
	s := &sinkConn{}
	c := inj.Wrap(s)
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		_, err = c.Write(bytes.Repeat([]byte{0xee}, 8))
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if _, err := c.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("dead conn's Write: want ErrInjected, got %v", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("dead conn's Read: want ErrInjected, got %v", err)
	}
}

func TestNoConfigNoFaults(t *testing.T) {
	inj := New(9, Config{})
	s := &sinkConn{}
	s.in.Reset([]byte("hello"))
	c := inj.Wrap(s)
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if sched := inj.Schedule(); len(sched) != 0 {
		t.Fatalf("zero config fired faults: %v", sched)
	}
}
