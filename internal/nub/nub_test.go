package nub

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"testing/quick"

	"ldb/internal/amem"
	"ldb/internal/arch"
	"ldb/internal/arch/m68k"
	"ldb/internal/arch/mips"
	"ldb/internal/arch/sparc"
	"ldb/internal/arch/vax"
	"ldb/internal/machine"
)

func TestProtocolRoundTripProperty(t *testing.T) {
	// The paper's protocol was validated with a model checker [13];
	// here the codec is checked by exhaustive property testing.
	f := func(kind uint8, space byte, size, addr uint32, val uint64, code, sig int32, data []byte) bool {
		if len(data) > 4096 {
			data = data[:4096]
		}
		in := &Msg{Kind: MsgKind(kind), Space: space, Size: size, Addr: addr, Val: val, Code: code, Sig: sig, Data: data}
		var buf bytes.Buffer
		if err := WriteMsg(&buf, in); err != nil {
			return false
		}
		out, err := ReadMsg(&buf)
		if err != nil {
			return false
		}
		if out.Kind != in.Kind || out.Space != in.Space || out.Size != in.Size ||
			out.Addr != in.Addr || out.Val != in.Val || out.Code != in.Code || out.Sig != in.Sig {
			return false
		}
		if len(out.Data) != len(in.Data) {
			return len(in.Data) == 0 && len(out.Data) == 0
		}
		return bytes.Equal(out.Data, in.Data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolIsLittleEndianOnTheWire(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMsg(&buf, &Msg{Kind: MFetchInt, Addr: 0x11223344, Size: 4}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Addr begins at byte 6 and must be little-endian.
	if b[6] != 0x44 || b[7] != 0x33 || b[8] != 0x22 || b[9] != 0x11 {
		t.Fatalf("address bytes on the wire: % x", b[6:10])
	}
}

// testProgram assembles, for the given architecture: pause; store 42 to
// DataBase; trap 3; exit(7).
func testProgram(t *testing.T, a arch.Arch) []byte {
	t.Helper()
	switch m := a.(type) {
	case *mips.Mips:
		as := mips.NewAsm(m)
		as.Break(arch.TrapPause)
		as.LI(mips.T0, int32(machine.DataBase))
		as.LI(mips.T0+1, 42)
		as.I(mips.OpSw, mips.T0+1, mips.T0, 0)
		as.Break(3)
		as.LI(mips.V0, arch.SysExit)
		as.LI(mips.A0, 7)
		as.Syscall()
		code, _, err := as.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return code
	case *sparc.Sparc:
		as := sparc.NewAsm()
		as.Trap(arch.TrapPause)
		as.LI(1, int32(machine.DataBase))
		as.LI(2, 42)
		as.Store(sparc.Op3St, 2, 1, 0)
		as.Trap(3)
		as.LI(sparc.G1, arch.SysExit)
		as.LI(sparc.O0, 7)
		as.Trap(1)
		code, _, err := as.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return code
	case *m68k.M68k:
		as := m68k.NewAsm()
		as.Trap(14)
		as.MoveImm(m68k.A0, int32(machine.DataBase))
		as.MoveImm(m68k.D2, 42)
		as.Mem(m68k.MvStoreL, m68k.D2, m68k.A0, 0)
		as.Trap(3)
		as.MoveImm(m68k.D1, arch.SysExit)
		as.MoveImm(m68k.D2, 7)
		as.Trap(1)
		code, _, err := as.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return code
	case *vax.Vax:
		as := vax.NewAsm()
		as.Chmk(arch.TrapPause)
		as.Op(vax.OpMovl, vax.ImmL(machine.DataBase), vax.Rn(2))
		as.Op(vax.OpMovl, vax.ImmL(42), vax.Disp(2, 0))
		as.Bpt()
		as.MoveImm(vax.R1, 7)
		as.Chmk(arch.SysExit)
		code, _, err := as.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return code
	}
	t.Fatalf("no test program for %s", a.Name())
	return nil
}

var allArches = []arch.Arch{mips.Little, mips.Big, sparc.Target, m68k.Target, vax.Target}

func TestFullSessionAllTargets(t *testing.T) {
	for _, a := range allArches {
		t.Run(a.Name(), func(t *testing.T) {
			code := testProgram(t, a)
			c, n, p, err := Launch(a, code, make([]byte, 64), machine.TextBase)
			if err != nil {
				t.Fatal(err)
			}
			if c.ArchName != a.Name() {
				t.Fatalf("welcome arch = %q", c.ArchName)
			}
			// First event: the pause trap before main.
			if c.Last.Exited || c.Last.Sig != arch.SigTrap || c.Last.Code != arch.TrapPause {
				t.Fatalf("first event = %v", c.Last)
			}
			// The context holds the (already advanced) pc.
			l := a.Context()
			pcInCtx, err := c.FetchInt(amem.Data, n.CtxAddr()+uint32(l.PCOff), 4)
			if err != nil {
				t.Fatal(err)
			}
			if uint32(pcInCtx) <= c.Last.PC {
				t.Fatalf("context pc %#x not past pause at %#x", pcInCtx, c.Last.PC)
			}
			// Continue to the embedded trap.
			ev, err := c.Continue()
			if err != nil {
				t.Fatal(err)
			}
			if ev.Exited || ev.Sig != arch.SigTrap {
				t.Fatalf("second event = %v", ev)
			}
			// The store before the trap is visible through the wire.
			v, err := c.FetchInt(amem.Data, machine.DataBase, 4)
			if err != nil {
				t.Fatal(err)
			}
			if v != 42 {
				t.Fatalf("fetched %d, want 42", v)
			}
			// Store through the wire, read back.
			if err := c.StoreInt(amem.Data, machine.DataBase+8, 2, 0xbeef); err != nil {
				t.Fatal(err)
			}
			v, err = c.FetchInt(amem.Data, machine.DataBase+8, 2)
			if err != nil || v != 0xbeef {
				t.Fatalf("store/fetch = %#x, %v", v, err)
			}
			// Resume past the trap (ldb's job): bump the context pc.
			pcNow, _ := c.FetchInt(amem.Data, n.CtxAddr()+uint32(l.PCOff), 4)
			adv := uint64(1)
			switch a.Name() {
			case "mips", "mipsbe", "sparc":
				adv = 4
			case "m68k":
				adv = 2
			}
			if err := c.StoreInt(amem.Data, n.CtxAddr()+uint32(l.PCOff), 4, pcNow+adv); err != nil {
				t.Fatal(err)
			}
			ev, err = c.Continue()
			if err != nil {
				t.Fatal(err)
			}
			if !ev.Exited || ev.Status != 7 {
				t.Fatalf("final event = %v, want exited(7)", ev)
			}
			if p.State != machine.StateExited {
				t.Fatalf("process state = %v", p.State)
			}
		})
	}
}

func TestRegisterAssignmentThroughContext(t *testing.T) {
	// Writing a register's context slot changes the register when the
	// nub restores the context on continue (§4.1's assignment path).
	a := mips.Little
	as := mips.NewAsm(a)
	as.Break(arch.TrapPause)
	// exit(t0): whatever is in t0 becomes the exit status.
	as.LI(mips.V0, arch.SysExit)
	as.R(mips.FnAddu, mips.A0, mips.T0, 0)
	as.Syscall()
	code, _, err := as.Finish()
	if err != nil {
		t.Fatal(err)
	}
	c, n, _, err := Launch(a, code, nil, machine.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	l := a.Context()
	slot := n.CtxAddr() + uint32(l.RegOffs[mips.T0])
	if err := c.StoreInt(amem.Data, slot, 4, 99); err != nil {
		t.Fatal(err)
	}
	ev, err := c.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Exited || ev.Status != 99 {
		t.Fatalf("event = %v, want exited(99)", ev)
	}
}

func TestMipsBigEndianFloatQuirk(t *testing.T) {
	// §4.3 footnote: on a big-endian MIPS the kernel saves floating
	// registers least significant word first. The raw context bytes
	// show the swap; the nub's FetchFloat compensates.
	a := mips.Big
	as := mips.NewAsm(a)
	as.LI(mips.T0, 1)
	as.Mtc1(mips.T0, 2) // f2 = 1.0
	as.Break(arch.TrapPause)
	as.LI(mips.V0, arch.SysExit)
	as.LI(mips.A0, 0)
	as.Syscall()
	code, _, err := as.Finish()
	if err != nil {
		t.Fatal(err)
	}
	c, n, _, err := Launch(a, code, nil, machine.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	l := a.Context()
	slot := n.CtxAddr() + uint32(l.FRegOffs[2])
	v, err := c.FetchFloat(amem.Data, slot, 8)
	if err != nil || v != 1.0 {
		t.Fatalf("quirk-corrected fetch = %g, %v", v, err)
	}
	raw, err := c.FetchBytes(amem.Data, slot, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Big-endian 1.0 is 3f f0 00 ... ; word-swapped, the 3f f0 appears
	// in the second word.
	if raw[4] != 0x3f || raw[5] != 0xf0 {
		t.Fatalf("raw context bytes not word-swapped: % x", raw)
	}
	// The little-endian MIPS must NOT swap.
	al := mips.Little
	asl := mips.NewAsm(al)
	asl.LI(mips.T0, 1)
	asl.Mtc1(mips.T0, 2)
	asl.Break(arch.TrapPause)
	code, _, _ = asl.Finish()
	cl, nl, _, err := Launch(al, code, nil, machine.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	slotL := nl.CtxAddr() + uint32(al.Context().FRegOffs[2])
	vl, err := cl.FetchFloat(amem.Data, slotL, 8)
	if err != nil || vl != 1.0 {
		t.Fatalf("little-endian fetch = %g, %v", vl, err)
	}
	rawL, _ := cl.FetchBytes(amem.Data, slotL, 8)
	if rawL[6] != 0xf0 || rawL[7] != 0x3f {
		t.Fatalf("little-endian double bytes: % x", rawL)
	}
}

func TestDetachAndReconnectPreservesState(t *testing.T) {
	// "Normally, when a connection is broken, even by a debugger crash,
	// the nub preserves the state of the target program and waits for a
	// new connection from another instance of ldb."
	a := mips.Little
	code := testProgram(t, a)
	p := machine.New(a, code, make([]byte, 64), machine.TextBase)
	n := New(p)
	n.Start()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go n.ServeListener(l)

	c1, conn1, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if c1.Last.Code != arch.TrapPause {
		t.Fatalf("first event: %v", c1.Last)
	}
	if err := c1.StoreInt(amem.Data, machine.DataBase+16, 4, 0xabcd); err != nil {
		t.Fatal(err)
	}
	if err := c1.Detach(); err != nil {
		t.Fatal(err)
	}
	conn1.Close()

	// A second debugger connects and sees the same stopped state.
	c2, conn2, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if c2.Last.Code != arch.TrapPause {
		t.Fatalf("replayed event: %v", c2.Last)
	}
	v, err := c2.FetchInt(amem.Data, machine.DataBase+16, 4)
	if err != nil || v != 0xabcd {
		t.Fatalf("state not preserved: %#x, %v", v, err)
	}
	if err := c2.Kill(); err != nil {
		t.Fatal(err)
	}
}

func TestAbruptDisconnectPreservesState(t *testing.T) {
	a := mips.Little
	code := testProgram(t, a)
	p := machine.New(a, code, make([]byte, 64), machine.TextBase)
	n := New(p)
	n.Start()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go n.ServeListener(l)
	// "Crash": connect and drop without detach.
	c1, conn1, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	_ = c1
	conn1.Close()
	c2, conn2, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if c2.Last.Code != arch.TrapPause {
		t.Fatalf("event after crash: %v", c2.Last)
	}
	_ = c2.Kill()
}

func TestFaultyProcessWaitsForDebugger(t *testing.T) {
	// A program that is not being debugged runs free, faults, and then
	// waits for a connection: the nub catches unexpected faults; the
	// target need not be a child of the debugger (§4.2).
	a := mips.Little
	as := mips.NewAsm(a)
	as.Break(arch.TrapPause) // ignored by RunFree
	as.LI(mips.T0, 0x10)     // wild pointer
	as.I(mips.OpLw, mips.T0+1, mips.T0, 0)
	code, _, err := as.Finish()
	if err != nil {
		t.Fatal(err)
	}
	p := machine.New(a, code, nil, machine.TextBase)
	n := New(p)
	n.RunFree()
	c, err := Pair(n)
	if err != nil {
		t.Fatal(err)
	}
	if c.Last.Exited || c.Last.Sig != arch.SigSegv {
		t.Fatalf("event = %v, want SIGSEGV", c.Last)
	}
}

func TestWireMemory(t *testing.T) {
	a := mips.Little
	code := testProgram(t, a)
	c, _, _, err := Launch(a, code, make([]byte, 64), machine.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	w := &Wire{C: c}
	if err := w.StoreInt(amem.Abs(amem.Data, machine.DataBase+4), 4, 0x1234); err != nil {
		t.Fatal(err)
	}
	v, err := w.FetchInt(amem.Abs(amem.Data, machine.DataBase+4), 4)
	if err != nil || v != 0x1234 {
		t.Fatalf("wire int = %#x, %v", v, err)
	}
	if err := w.StoreFloat(amem.Abs(amem.Data, machine.DataBase+24), 8, 2.5); err != nil {
		t.Fatal(err)
	}
	fv, err := w.FetchFloat(amem.Abs(amem.Data, machine.DataBase+24), 8)
	if err != nil || fv != 2.5 {
		t.Fatalf("wire float = %g, %v", fv, err)
	}
	// Immediate fetches never reach the nub.
	v, err = w.FetchInt(amem.Imm(77), 4)
	if err != nil || v != 77 {
		t.Fatalf("imm = %d, %v", v, err)
	}
	// Register spaces are not served by the wire.
	if _, err := w.FetchInt(amem.Abs(amem.Reg, 1), 4); err == nil {
		t.Fatal("register space over the wire must fail")
	}
	// Errors from the nub surface as errors, and the connection keeps
	// working afterward.
	if _, err := w.FetchInt(amem.Abs(amem.Data, 0x10), 4); err == nil {
		t.Fatal("wild fetch must fail")
	}
	v, err = w.FetchInt(amem.Abs(amem.Data, machine.DataBase+4), 4)
	if err != nil || v != 0x1234 {
		t.Fatalf("connection broken after error: %v", err)
	}
}

func TestCodeSpaceStores(t *testing.T) {
	// Planting a breakpoint is a store into the code space — the only
	// mechanism breakpoints need (§6).
	a := mips.Little
	code := testProgram(t, a)
	c, _, _, err := Launch(a, code, nil, machine.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := c.FetchInt(amem.Code, machine.TextBase+4, 4)
	if err != nil {
		t.Fatal(err)
	}
	brk := a.BreakInstr()
	if err := c.StoreBytes(amem.Code, machine.TextBase+4, brk); err != nil {
		t.Fatal(err)
	}
	patched, _ := c.FetchInt(amem.Code, machine.TextBase+4, 4)
	if patched == orig {
		t.Fatal("store to code space had no effect")
	}
}

func TestDebugStrings(t *testing.T) {
	// The diagnostic renderings used in failure messages and traces.
	e := &Event{Sig: arch.SigTrap, Code: arch.TrapBreakpoint, PC: 0x400010}
	if s := e.String(); !strings.Contains(s, "pc=0x400010") {
		t.Errorf("event = %q", s)
	}
	e = &Event{Exited: true, Status: 3}
	if e.String() != "exited(3)" {
		t.Errorf("exited event = %q", e.String())
	}
	for k := MHello; k <= MPlanted; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "?") {
			t.Errorf("MsgKind %d has no name", int(k))
		}
	}
	if MsgKind(200).String() == MHello.String() {
		t.Error("unknown kind aliases hello")
	}
}
