package nub

import (
	"encoding/binary"
	"fmt"
)

// The versioned reply bodies live here, one struct per wire kind, with
// their codecs beside them. Each struct is append-only: old readers
// parse a prefix of new replies, so every field's byte offset is frozen
// the day a reader ships. The //ldb:wire-body and //ldb:off directives
// let the wirecompat analyzer recompute the offsets on every run and
// reject a reorder or mid-struct insertion before it reaches the wire.
// The encode/decode pairs below are the only writers and readers of
// these bodies — the nub, the service, and the client all go through
// them, so both sides of the protocol are bound to one definition.

// SimStatsReport is the nub's simulator report: instructions executed
// and the decode-cache counters behind them. Blocks and BlockInsns
// describe superblock fusion; a nub predating fusion reports a
// 40-byte body and both stay zero.
//
//ldb:wire-body simstatsreply size=56 legacy=40
type SimStatsReport struct {
	Steps         int64 //ldb:off 0
	Hits          int64 //ldb:off 8
	Decodes       int64 //ldb:off 16
	Invalidations int64 //ldb:off 24
	Fallbacks     int64 //ldb:off 32
	Blocks        int64 //ldb:off 40
	BlockInsns    int64 //ldb:off 48
}

// encodeSimStats writes the full modern body; legacy readers stop at
// Fallbacks on their own.
func encodeSimStats(r SimStatsReport) []byte {
	b := make([]byte, 0, 56)
	for _, v := range []int64{r.Steps, r.Hits, r.Decodes, r.Invalidations,
		r.Fallbacks, r.Blocks, r.BlockInsns} {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	return b
}

// decodeSimStats accepts the modern 56-byte body or the 40-byte legacy
// prefix a pre-fusion nub sends.
func decodeSimStats(b []byte) (SimStatsReport, error) {
	if len(b) != 40 && len(b) != 56 {
		return SimStatsReport{}, fmt.Errorf("nub: malformed simstats reply (%d bytes)", len(b))
	}
	v := func(i int) int64 { return int64(binary.LittleEndian.Uint64(b[i*8:])) }
	st := SimStatsReport{Steps: v(0), Hits: v(1), Decodes: v(2), Invalidations: v(3), Fallbacks: v(4)}
	if len(b) == 56 { // a pre-fusion nub stops at Fallbacks
		st.Blocks, st.BlockInsns = v(5), v(6)
	}
	return st, nil
}

// ServerStatsReport is the nub's robustness report: what hostile or
// broken input it has survived so far.
//
//ldb:wire-body serverstatsreply size=40
type ServerStatsReport struct {
	RecoveredPanics int64 //ldb:off 0
	MalformedFrames int64 //ldb:off 8
	OversizeRejects int64 //ldb:off 16
	SlowReads       int64 //ldb:off 24
	CtxFaults       int64 //ldb:off 32
}

func encodeServerStats(r ServerStatsReport) []byte {
	b := make([]byte, 0, 40)
	for _, v := range []int64{r.RecoveredPanics, r.MalformedFrames,
		r.OversizeRejects, r.SlowReads, r.CtxFaults} {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	return b
}

func decodeServerStats(b []byte) (ServerStatsReport, error) {
	if len(b) != 40 {
		return ServerStatsReport{}, fmt.Errorf("nub: malformed serverstats reply (%d bytes)", len(b))
	}
	v := func(i int) int64 { return int64(binary.LittleEndian.Uint64(b[i*8:])) }
	return ServerStatsReport{
		RecoveredPanics: v(0), MalformedFrames: v(1), OversizeRejects: v(2),
		SlowReads: v(3), CtxFaults: v(4),
	}, nil
}

// ServiceStatsReport is the debug service's health line: pool and
// shared-decode-cache counters, plus per-session and aggregate request
// counts.
//
//ldb:wire-body servicestatsreply size=88 legacy=64
type ServiceStatsReport struct {
	Live            int64 //ldb:off 0  — sessions in the pool now
	Peak            int64 //ldb:off 8  — most sessions ever live at once
	Evicted         int64 //ldb:off 16 — idle sessions LRU-evicted at capacity
	Opened          int64 //ldb:off 24 — sessions ever spawned
	SharedHits      int64 //ldb:off 32 — warm attaches served by the shared decode cache
	SharedMisses    int64 //ldb:off 40 — cold attaches that had to decode
	SessionRequests int64 //ldb:off 48 — requests served for this connection's session
	TotalRequests   int64 //ldb:off 56 — requests served across all sessions ever
	// Crash-only lifecycle counters; zero against services built before
	// passivation existed (their replies carry only the eight values
	// above).
	Passivated  int64 //ldb:off 64 — sessions checkpointed into the passivated store on eviction
	Resurrected int64 //ldb:off 72 — sessions rebuilt from a stored checkpoint on attach
	Rollbacks   int64 //ldb:off 80 — crashed requests answered by checkpoint rollback
}

func encodeServiceStats(r ServiceStatsReport) []byte {
	b := make([]byte, 0, 88)
	for _, v := range []int64{r.Live, r.Peak, r.Evicted, r.Opened,
		r.SharedHits, r.SharedMisses, r.SessionRequests, r.TotalRequests,
		r.Passivated, r.Resurrected, r.Rollbacks} {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	return b
}

// decodeServiceStats accepts the modern 88-byte body or the 64-byte
// prefix a pre-passivation service sends.
func decodeServiceStats(b []byte) (ServiceStatsReport, error) {
	if len(b) != 64 && len(b) != 88 {
		return ServiceStatsReport{}, fmt.Errorf("nub: malformed servicestats reply (%d bytes)", len(b))
	}
	v := func(i int) int64 { return int64(binary.LittleEndian.Uint64(b[i*8:])) }
	r := ServiceStatsReport{
		Live: v(0), Peak: v(1), Evicted: v(2), Opened: v(3),
		SharedHits: v(4), SharedMisses: v(5),
		SessionRequests: v(6), TotalRequests: v(7),
	}
	if len(b) == 88 {
		r.Passivated, r.Resurrected, r.Rollbacks = v(8), v(9), v(10)
	}
	return r, nil
}
