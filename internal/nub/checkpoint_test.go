package nub

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ldb/internal/amem"
	"ldb/internal/arch"
	"ldb/internal/machine"
)

// ckTestNub builds a nub on the standard test program, run to its first
// stop, with a breakpoint planted and a sentinel stored — a session
// with every kind of state a checkpoint must carry.
func ckTestNub(t *testing.T) *Nub {
	t.Helper()
	a := allArches[0]
	p := machine.New(a, testProgram(t, a), make([]byte, 64), machine.TextBase)
	n := New(p)
	n.Start()
	orig := make([]byte, 4)
	if err := p.ReadBytes(machine.TextBase+4, orig); err != nil {
		t.Fatal(err)
	}
	if rep := n.safeHandle(&Msg{Kind: MPlantStore, Space: byte(amem.Code), Addr: machine.TextBase + 4, Size: 4, Data: orig}); rep.Kind != MOK {
		t.Fatalf("plant: %s", rep.Data)
	}
	if rep := n.safeHandle(&Msg{Kind: MStoreInt, Space: byte(amem.Data), Addr: machine.DataBase + 8, Size: 4, Val: 0xabcd}); rep.Kind != MOK {
		t.Fatalf("store: %s", rep.Data)
	}
	return n
}

func TestCheckpointCodecRoundtrip(t *testing.T) {
	n := ckTestNub(t)
	ck := n.Checkpoint()
	ck.Events = []machine.Event{
		{Kind: machine.EvStoreInt, Space: byte(amem.Data), Addr: machine.DataBase + 12, Size: 4, Val: 7},
		{Kind: machine.EvStoreBytes, Space: byte(amem.Data), Addr: machine.DataBase + 16, Size: 2, Data: []byte{1, 2}},
		{Kind: machine.EvContinue},
	}
	blob := encodeCheckpoint("mips", ck, n.pending)

	sc, err := decodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if sc.program != "mips" || sc.ck.Arch != ck.Arch || sc.ck.Steps != ck.Steps || sc.ck.PC != ck.PC {
		t.Fatalf("identity: %q %q %d %#x", sc.program, sc.ck.Arch, sc.ck.Steps, sc.ck.PC)
	}
	if len(sc.ck.Planted) != 1 {
		t.Fatalf("planted: %v", sc.ck.Planted)
	}
	if len(sc.ck.Events) != 3 || sc.ck.Events[2].Kind != machine.EvContinue || !bytes.Equal(sc.ck.Events[1].Data, []byte{1, 2}) {
		t.Fatalf("events: %+v", sc.ck.Events)
	}
	if sc.pending == nil || sc.pending.Kind != n.pending.Kind {
		t.Fatalf("pending: %+v, want kind %v", sc.pending, n.pending.Kind)
	}

	// The decoded checkpoint must rebuild a byte-identical process.
	q, err := machine.FromCheckpoint(sc.ck)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range n.P.Segs {
		got := make([]byte, len(s.Data))
		if err := q.ReadBytes(s.Base, got); err != nil {
			t.Fatalf("segment %q: %v", s.Name, err)
		}
		if !bytes.Equal(got, s.Data) {
			t.Fatalf("segment %d (%q) differs after codec roundtrip", i, s.Name)
		}
	}
	if q.PC() != n.P.PC() || q.Steps != n.P.Steps {
		t.Fatalf("pc/steps: %#x/%d, want %#x/%d", q.PC(), q.Steps, n.P.PC(), n.P.Steps)
	}

	// Deterministic encoding: encoding the same checkpoint twice yields
	// the same bytes (planted maps are sorted, not ranged).
	if !bytes.Equal(blob, encodeCheckpoint("mips", ck, n.pending)) {
		t.Fatal("encoding is not deterministic")
	}
}

// TestCheckpointDecodeHostile pins that malformed blobs error cleanly:
// every truncation of a valid blob, a corrupted magic, lying counts.
// The fuzzer explores far beyond this; these are the deterministic
// regressions.
func TestCheckpointDecodeHostile(t *testing.T) {
	n := ckTestNub(t)
	blob := encodeCheckpoint("mips", n.Checkpoint(), n.pending)
	for cut := 0; cut < len(blob); cut++ {
		if _, err := decodeCheckpoint(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if _, err := decodeCheckpoint(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := decodeCheckpoint(append(append([]byte(nil), blob...), 0x00)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	// A lying register count claims more than the cap.
	lie := append([]byte(nil), blob...)
	off := len(ckMagic) + 4 + len("mips") + 4 + len(n.P.A.Name()) + 8 + 4 + 4 + 1 + 4
	lie[off], lie[off+1], lie[off+2], lie[off+3] = 0xff, 0xff, 0xff, 0x7f
	if _, err := decodeCheckpoint(lie); err == nil {
		t.Fatal("oversized register count accepted")
	}
}

// TestSessionPassivateResurrect drives the crash-only eviction cycle:
// mutate a session, force it out of the pool with PassivateIdle, then
// attach to its id from a fresh connection — the resurrected session
// must carry the mutation, the planted breakpoint, the latched event,
// and still run to the same trap as an undisturbed session.
func TestSessionPassivateResurrect(t *testing.T) {
	s, addr := startService(t, nil)
	c, conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	id := c.SessionID()
	if err := c.StoreInt(amem.Data, machine.DataBase+8, 4, 0xabcd); err != nil {
		t.Fatal(err)
	}
	orig, err := c.FetchBytes(amem.Code, machine.TextBase+4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PlantStore(machine.TextBase+4, orig); err != nil {
		t.Fatal(err)
	}
	if err := c.Detach(); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// The serve goroutine returns the binding token after the detach
	// reply; wait for it, then force the eviction.
	deadline := time.Now().Add(5 * time.Second)
	for s.PassivateIdle(1) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never came idle for passivation")
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.Sessions(); got != 0 {
		t.Fatalf("pool holds %d sessions after passivation", got)
	}

	c2, conn2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	ev, err := c2.AttachSession(id)
	if err != nil {
		t.Fatalf("attach to passivated session: %v", err)
	}
	if ev.Exited || ev.Sig != arch.SigTrap || ev.Code != arch.TrapPause {
		t.Fatalf("resurrected event = %v, want the latched pause", ev)
	}
	if v, err := c2.FetchInt(amem.Data, machine.DataBase+8, 4); err != nil || v != 0xabcd {
		t.Fatalf("sentinel after resurrection = %#x, %v", v, err)
	}
	pl, err := c2.ListPlanted()
	if err != nil || len(pl) != 1 || pl[0].Addr != machine.TextBase+4 {
		t.Fatalf("planted after resurrection = %v, %v", pl, err)
	}
	if ev, err := c2.Continue(); err != nil || ev.Sig != arch.SigTrap || ev.Code != 3 {
		t.Fatalf("resurrected continue: %v, %v", ev, err)
	}
	if v, err := c2.FetchInt(amem.Data, machine.DataBase, 4); err != nil || v != 42 {
		t.Fatalf("resurrected run stored %d, %v", v, err)
	}
	st, err := c2.ServiceStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Passivated != 1 || st.Resurrected != 1 {
		t.Fatalf("lifecycle stats = %+v", st)
	}
}

// TestRollbackOnCrashedRequest injects a crash into a store request —
// with target state corrupted first, as a real mid-request panic could
// leave it — and checks the client's transparent retry lands on an
// uncorrupted session: the rollback must undo everything the crashed
// attempt touched.
func TestRollbackOnCrashedRequest(t *testing.T) {
	var fired atomic.Bool
	s, addr := startService(t, func(s *Service) {
		s.FaultHook = func(id uint64, n *Nub, req *Msg) bool {
			if req.Kind == MStoreInt && fired.CompareAndSwap(false, true) {
				// Scribble over data and text, as a crashed handler might.
				_ = n.P.WriteBytes(machine.DataBase, []byte{0xde, 0xad, 0xbe, 0xef})
				_ = n.P.WriteBytes(machine.TextBase, []byte{0, 0, 0, 0})
				return true
			}
			return false
		}
	})
	c, conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := c.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	if err := c.StoreInt(amem.Data, machine.DataBase+4, 4, 99); err != nil {
		t.Fatalf("store through injected crash: %v", err)
	}
	if !fired.Load() {
		t.Fatal("fault hook never fired")
	}
	if v, err := c.FetchInt(amem.Data, machine.DataBase+4, 4); err != nil || v != 99 {
		t.Fatalf("retried store = %d, %v", v, err)
	}
	if v, err := c.FetchInt(amem.Data, machine.DataBase, 4); err != nil || v != 0 {
		t.Fatalf("corruption survived rollback: %d, %v", v, err)
	}
	// The scribbled text was rolled back too: the program still runs to
	// its trap and stores 42.
	if ev, err := c.Continue(); err != nil || ev.Sig != arch.SigTrap || ev.Code != 3 {
		t.Fatalf("continue after rollback: %v, %v", ev, err)
	}
	if v, err := c.FetchInt(amem.Data, machine.DataBase, 4); err != nil || v != 42 {
		t.Fatalf("post-rollback run stored %d, %v", v, err)
	}
	if st, err := c.ServiceStats(); err != nil || st.Rollbacks != 1 {
		t.Fatalf("rollbacks = %+v, %v", st, err)
	}
	if got := s.rollbacks.Load(); got != 1 {
		t.Fatalf("service rollbacks = %d", got)
	}
	if c.Stats().Replays == 0 {
		t.Fatal("client never counted the transparent retry")
	}
}

// TestRollbackOnCrashedResume: the crash-only path must cover resumes
// too — a continue that crashes rolls back and the retried continue
// re-runs the exact same execution.
func TestRollbackOnCrashedResume(t *testing.T) {
	var fired atomic.Bool
	_, addr := startService(t, func(s *Service) {
		s.FaultHook = func(id uint64, n *Nub, req *Msg) bool {
			return req.Kind == MContinue && fired.CompareAndSwap(false, true)
		}
	})
	c, conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := c.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	ev, err := c.Continue()
	if err != nil || ev.Sig != arch.SigTrap || ev.Code != 3 {
		t.Fatalf("continue through injected crash: %v, %v", ev, err)
	}
	if v, err := c.FetchInt(amem.Data, machine.DataBase, 4); err != nil || v != 42 {
		t.Fatalf("fetch = %d, %v", v, err)
	}
	if !fired.Load() {
		t.Fatal("fault hook never fired")
	}
}

// TestCloseSessionIdempotent: closing is "make the session not exist",
// so closing sessions that already do not exist — never opened, closed
// twice, or passivated — succeeds cleanly, and a close of a passivated
// session drops its checkpoint for good.
func TestCloseSessionIdempotent(t *testing.T) {
	s, addr := startService(t, nil)
	c, conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Unknown session, from the lobby.
	if _, err := c.roundTrip(&Msg{Kind: MCloseSession, Val: 9999}, MOK); err != nil {
		t.Fatalf("close of unknown session: %v", err)
	}
	// Double close.
	if _, err := c.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	id := c.SessionID()
	if err := c.CloseSession(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.roundTrip(&Msg{Kind: MCloseSession, Val: id}, MOK); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// Close of a passivated session drops the stored checkpoint.
	if _, err := c.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	id = c.SessionID()
	if err := c.Detach(); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.PassivateIdle(1) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never came idle")
		}
		time.Sleep(time.Millisecond)
	}
	c2, conn2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := c2.roundTrip(&Msg{Kind: MCloseSession, Val: id}, MOK); err != nil {
		t.Fatalf("close of passivated session: %v", err)
	}
	if _, err := c2.AttachSession(id); err == nil || !strings.Contains(err.Error(), "no such session") {
		t.Fatalf("closed session resurrected: %v", err)
	}
}
