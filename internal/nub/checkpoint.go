// Crash-only sessions, nub side. A session checkpoint is the machine's
// copy-on-write process snapshot plus the debug-layer state that lives
// in the nub: the planted-breakpoint set and the latched stop event.
// This file carries the nub's three checkpoint duties — forking one
// (Checkpoint), rewinding to one (RestoreCheckpoint), and re-applying
// the event log through the nub's own handlers (ReplayEvent), so a
// replay reproduces exactly the original request semantics: space
// checks, float quirks, plant bookkeeping, and panic containment
// included — and the serialized form the debug service passivates
// evicted sessions into. The decoder trusts nothing: it is fuzzed with
// hostile bytes and must return errors, never panic.
package nub

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"ldb/internal/amem"
	"ldb/internal/machine"
)

// Checkpoint forks a session-level checkpoint: the immutable process
// snapshot plus a copy of the nub's planted-breakpoint set.
func (n *Nub) Checkpoint() *machine.Checkpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.checkpointLocked()
}

// checkpointLocked is Checkpoint for callers already holding n.mu — the
// service's auto-checkpoint callback fires from inside Run, where the
// serving path holds the lock.
func (n *Nub) checkpointLocked() *machine.Checkpoint {
	ck := n.P.TakeCheckpoint()
	ck.Planted = make(map[uint32][]byte, len(n.planted))
	for addr, old := range n.planted {
		ck.Planted[addr] = append([]byte(nil), old...)
	}
	return ck
}

// RestoreCheckpoint rewinds the session to a checkpoint taken from it:
// process state, planted set, and the latched stop event all return to
// the moment the checkpoint was taken. A dead nub comes back alive —
// rollback is how a crashed request un-happens, and a checkpoint never
// captures a dead session.
func (n *Nub) RestoreCheckpoint(ck *machine.Checkpoint, pending *Msg) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.P.Restore(ck); err != nil {
		return err
	}
	n.planted = make(map[uint32][]byte, len(ck.Planted))
	for addr, old := range ck.Planted {
		n.planted[addr] = append([]byte(nil), old...)
	}
	n.pending = pending
	n.dead = false
	return nil
}

// ReplayEvent re-applies one logged input. Stores and plants go through
// safeHandle — the same validate-and-contain path that served them the
// first time — so a replayed request that failed originally fails
// identically and changes nothing. Resume events reproduce
// serveOneLocked's exact behavior, including leaving the pending event
// untouched when the target has already exited.
func (n *Nub) ReplayEvent(ev machine.Event) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.replayEventLocked(ev)
}

func (n *Nub) replayEventLocked(ev machine.Event) {
	switch ev.Kind {
	case machine.EvStoreInt:
		n.safeHandle(&Msg{Kind: MStoreInt, Space: ev.Space, Addr: ev.Addr, Size: ev.Size, Val: ev.Val})
	case machine.EvStoreFloat:
		n.safeHandle(&Msg{Kind: MStoreFloat, Space: ev.Space, Addr: ev.Addr, Size: ev.Size, Val: ev.Val})
	case machine.EvStoreBytes:
		n.safeHandle(&Msg{Kind: MStoreBytes, Space: ev.Space, Addr: ev.Addr, Size: ev.Size, Data: ev.Data})
	case machine.EvPlant:
		n.safeHandle(&Msg{Kind: MPlantStore, Space: ev.Space, Addr: ev.Addr, Size: ev.Size, Data: ev.Data})
	case machine.EvUnplant:
		n.safeHandle(&Msg{Kind: MUnplantStore, Space: ev.Space, Addr: ev.Addr, Size: ev.Size})
	case machine.EvContinue, machine.EvStep:
		if n.P.State == machine.StateExited {
			return
		}
		step := ev.Kind == machine.EvStep
		n.resumeAndLatch(func() {
			if rerr := n.restoreContext(); rerr != nil {
				n.latchCtxFault(n.P.PC())
				return
			}
			if step {
				n.stepAndLatch()
			} else {
				n.runAndLatch()
			}
		})
	case machine.EvResume:
		// The checkpoint was taken mid-run: resume without a context
		// restore — the registers in the checkpoint ARE the live state.
		if n.P.State == machine.StateExited {
			return
		}
		n.resumeAndLatch(n.runAndLatch)
	}
}

// sessionCheckpoint is the deserialized form of a passivated session:
// the checkpoint, the program name it was opened from, and the stop
// event that was latched when it was passivated.
type sessionCheckpoint struct {
	program string
	ck      *machine.Checkpoint
	pending *Msg
}

// ckMagic versions the passivation format. Bumping it (ldbck2, ...)
// invalidates stored checkpoints instead of misparsing them.
const ckMagic = "ldbck1"

// Decoder bounds. A passivated blob is read back from an in-service
// store or a spill directory, but the fuzzer feeds the decoder
// arbitrary bytes, so every count is capped before it sizes an
// allocation or a loop.
const (
	maxCkStr     = 4096    // program, arch, and segment names
	maxCkRegs    = 1024    // integer or float register file
	maxCkSegs    = 64      // segments per process
	maxCkSegLen  = 1 << 26 // bytes per segment
	maxCkEvents  = 1 << 16 // replay-log entries
	maxCkPlanted = 1 << 16 // planted breakpoints
)

func wu8(b *bytes.Buffer, v byte) { b.WriteByte(v) }
func wu32(b *bytes.Buffer, v uint32) {
	var r [4]byte
	binary.LittleEndian.PutUint32(r[:], v)
	b.Write(r[:])
}
func wu64(b *bytes.Buffer, v uint64) {
	var r [8]byte
	binary.LittleEndian.PutUint64(r[:], v)
	b.Write(r[:])
}
func wstr(b *bytes.Buffer, s string) { wu32(b, uint32(len(s))); b.WriteString(s) }

// encodeCheckpoint serializes a session checkpoint. Segment memory goes
// out sparsely — only the non-nil pages of each copy-on-write PageMap —
// so a passivated session with a mostly-zero stack costs bytes
// proportional to what it actually touched. The encoding is
// deterministic (planted breakpoints sorted by address), little-endian
// throughout like the wire protocol it rides beside.
//
//ldb:deterministic
func encodeCheckpoint(program string, ck *machine.Checkpoint, pending *Msg) []byte {
	var b bytes.Buffer
	b.WriteString(ckMagic)
	wstr(&b, program)
	wstr(&b, ck.Arch)
	wu64(&b, uint64(ck.Steps))
	wu32(&b, ck.PC)
	wu32(&b, ck.Flag)
	wu8(&b, byte(ck.State))
	wu32(&b, uint32(int32(ck.ExitCode)))
	wu32(&b, uint32(len(ck.Regs)))
	for _, r := range ck.Regs {
		wu32(&b, r)
	}
	wu32(&b, uint32(len(ck.FRegs)))
	for _, f := range ck.FRegs {
		wu64(&b, math.Float64bits(f))
	}
	wu32(&b, uint32(len(ck.Stdout)))
	b.Write(ck.Stdout)
	for _, v := range []int64{ck.Sim.Hits, ck.Sim.Decodes, ck.Sim.Invalidations, ck.Sim.Fallbacks, ck.Sim.Blocks, ck.Sim.BlockInsns} {
		wu64(&b, uint64(v))
	}
	wu32(&b, uint32(len(ck.Segs)))
	for _, seg := range ck.Segs {
		wstr(&b, seg.Name)
		wu32(&b, seg.Base)
		wu32(&b, uint32(seg.Mem.Len()))
		present := 0
		for i := 0; i < seg.Mem.NumPages(); i++ {
			if seg.Mem.Page(i) != nil {
				present++
			}
		}
		wu32(&b, uint32(present))
		for i := 0; i < seg.Mem.NumPages(); i++ {
			pg := seg.Mem.Page(i)
			if pg == nil {
				continue
			}
			wu32(&b, uint32(i))
			wu32(&b, uint32(len(pg)))
			b.Write(pg)
		}
	}
	addrs := make([]uint32, 0, len(ck.Planted))
	for addr := range ck.Planted {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	wu32(&b, uint32(len(addrs)))
	for _, addr := range addrs {
		old := ck.Planted[addr]
		wu32(&b, addr)
		wu32(&b, uint32(len(old)))
		b.Write(old)
	}
	if pending != nil {
		var pb bytes.Buffer
		if WriteMsg(&pb, pending) == nil {
			wu8(&b, 1)
			b.Write(pb.Bytes())
		} else {
			wu8(&b, 0)
		}
	} else {
		wu8(&b, 0)
	}
	wu32(&b, uint32(len(ck.Events)))
	for _, ev := range ck.Events {
		wu8(&b, byte(ev.Kind))
		wu8(&b, ev.Space)
		wu32(&b, ev.Addr)
		wu32(&b, ev.Size)
		wu64(&b, ev.Val)
		wu32(&b, uint32(len(ev.Data)))
		b.Write(ev.Data)
	}
	return b.Bytes()
}

// ckReader cursors over an untrusted checkpoint blob. Every read is
// bounds-checked; the first failure latches an error and all further
// reads return zero values, so decode loops need no per-read error
// plumbing and can never index past the buffer.
type ckReader struct {
	b   []byte
	err error
}

func (r *ckReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("nub: checkpoint: "+format, args...)
	}
}

func (r *ckReader) u8() byte {
	if r.err != nil || len(r.b) < 1 {
		r.fail("truncated")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *ckReader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail("truncated")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *ckReader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail("truncated")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

// take returns the next n bytes, copied so the result never aliases the
// blob (a resurrected segment page must not share storage with a spill
// file buffer someone may reuse).
func (r *ckReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b) {
		r.fail("truncated")
		return nil
	}
	if n == 0 {
		return nil
	}
	v := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return v
}

func (r *ckReader) str(what string) string {
	n := int(r.u32())
	if r.err == nil && n > maxCkStr {
		r.fail("%s name of %d bytes", what, n)
		return ""
	}
	return string(r.take(n))
}

// decodeCheckpoint parses a passivated session blob. Hostile input —
// truncations, lying counts, oversized claims, trailing garbage —
// yields an error; it never panics and never allocates more than the
// blob's own length plus the capped fixed tables.
func decodeCheckpoint(b []byte) (*sessionCheckpoint, error) {
	r := &ckReader{b: b}
	if magic := r.take(len(ckMagic)); r.err != nil || string(magic) != ckMagic {
		return nil, fmt.Errorf("nub: checkpoint: bad magic")
	}
	sc := &sessionCheckpoint{ck: &machine.Checkpoint{}}
	ck := sc.ck
	sc.program = r.str("program")
	ck.Arch = r.str("arch")
	ck.Steps = int64(r.u64())
	ck.PC = r.u32()
	ck.Flag = r.u32()
	ck.State = machine.State(r.u8())
	ck.ExitCode = int(int32(r.u32()))

	nregs := int(r.u32())
	if r.err == nil && nregs > maxCkRegs {
		r.fail("%d registers", nregs)
	}
	for i := 0; i < nregs && r.err == nil; i++ {
		ck.Regs = append(ck.Regs, r.u32())
	}
	nfregs := int(r.u32())
	if r.err == nil && nfregs > maxCkRegs {
		r.fail("%d float registers", nfregs)
	}
	for i := 0; i < nfregs && r.err == nil; i++ {
		ck.FRegs = append(ck.FRegs, math.Float64frombits(r.u64()))
	}
	nout := int(r.u32())
	if r.err == nil && nout > maxDataLen {
		r.fail("%d stdout bytes", nout)
	}
	ck.Stdout = r.take(nout)
	ck.Sim.Hits = int64(r.u64())
	ck.Sim.Decodes = int64(r.u64())
	ck.Sim.Invalidations = int64(r.u64())
	ck.Sim.Fallbacks = int64(r.u64())
	ck.Sim.Blocks = int64(r.u64())
	ck.Sim.BlockInsns = int64(r.u64())

	nsegs := int(r.u32())
	if r.err == nil && nsegs > maxCkSegs {
		r.fail("%d segments", nsegs)
	}
	for i := 0; i < nsegs && r.err == nil; i++ {
		name := r.str("segment")
		base := r.u32()
		slen := int(r.u32())
		if r.err == nil && slen > maxCkSegLen {
			r.fail("segment %q of %d bytes", name, slen)
			break
		}
		np := (slen + amem.SnapPage - 1) / amem.SnapPage
		present := int(r.u32())
		if r.err == nil && present > np {
			r.fail("segment %q claims %d of %d pages", name, present, np)
			break
		}
		pages := make([][]byte, np)
		for j := 0; j < present && r.err == nil; j++ {
			idx := int(r.u32())
			plen := int(r.u32())
			if r.err != nil {
				break
			}
			if idx >= np || plen > amem.SnapPage {
				r.fail("segment %q page %d/%d", name, idx, plen)
				break
			}
			pages[idx] = r.take(plen)
		}
		if r.err != nil {
			break
		}
		pm, err := amem.PageMapFromPages(slen, pages)
		if err != nil {
			r.fail("%v", err)
			break
		}
		ck.Segs = append(ck.Segs, machine.SegSnapshot{Name: name, Base: base, Mem: pm})
	}

	nplanted := int(r.u32())
	if r.err == nil && nplanted > maxCkPlanted {
		r.fail("%d planted breakpoints", nplanted)
	}
	ck.Planted = make(map[uint32][]byte, min(nplanted, 64))
	for i := 0; i < nplanted && r.err == nil; i++ {
		addr := r.u32()
		blen := int(r.u32())
		if r.err == nil && blen > maxDataLen {
			r.fail("planted record of %d bytes", blen)
			break
		}
		old := r.take(blen)
		if r.err == nil {
			ck.Planted[addr] = old
		}
	}

	if r.u8() != 0 && r.err == nil {
		br := bytes.NewReader(r.b)
		m, err := ReadMsg(br)
		if err != nil {
			r.fail("pending event: %v", err)
		} else {
			sc.pending = m
			r.b = r.b[len(r.b)-br.Len():]
		}
	}

	nev := int(r.u32())
	if r.err == nil && nev > maxCkEvents {
		r.fail("%d events", nev)
	}
	for i := 0; i < nev && r.err == nil; i++ {
		var ev machine.Event
		ev.Kind = machine.EventKind(r.u8())
		ev.Space = r.u8()
		ev.Addr = r.u32()
		ev.Size = r.u32()
		ev.Val = r.u64()
		dlen := int(r.u32())
		if r.err == nil && dlen > maxDataLen {
			r.fail("event payload of %d bytes", dlen)
			break
		}
		ev.Data = r.take(dlen)
		if r.err == nil {
			ck.Events = append(ck.Events, ev)
		}
	}

	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("nub: checkpoint: %d trailing bytes", len(r.b))
	}
	return sc, nil
}
