package nub

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"ldb/internal/amem"
	"ldb/internal/arch"
	"ldb/internal/arch/mips"
	"ldb/internal/machine"
)

// TestReadMsgRejectsGarbage feeds random bytes to the decoder: it must
// return an error or a message, never panic, and never allocate
// unboundedly.
func TestReadMsgRejectsGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		n := r.Intn(64)
		buf := make([]byte, n)
		r.Read(buf)
		_, _ = ReadMsg(bytes.NewReader(buf))
	}
	// A header promising a giant payload is rejected before allocation.
	var m bytes.Buffer
	WriteMsg(&m, &Msg{Kind: MFetchBytes})
	b := m.Bytes()
	// Patch the length field (last 4 bytes of the header area).
	b[27], b[28], b[29], b[30] = 0xff, 0xff, 0xff, 0x7f
	if _, err := ReadMsg(bytes.NewReader(b)); err == nil {
		t.Fatal("giant payload accepted")
	}
}

func TestServeAfterKill(t *testing.T) {
	a := mips.Little
	as := mips.NewAsm(a)
	as.Break(arch.TrapPause)
	as.LI(mips.V0, arch.SysExit)
	as.LI(mips.A0, 0)
	as.Syscall()
	code, _, _ := as.Finish()
	p := machine.New(a, code, nil, machine.TextBase)
	n := New(p)
	n.Start()
	c, err := Pair(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(); err != nil {
		t.Fatal(err)
	}
	// A later Serve refuses: the target is gone.
	var buf bytes.Buffer
	if err := n.Serve(struct {
		io.Reader
		io.Writer
	}{&buf, &buf}); err == nil {
		t.Fatal("serve after kill succeeded")
	}
}

func TestContinueAfterExitReportsExit(t *testing.T) {
	a := mips.Little
	as := mips.NewAsm(a)
	as.Break(arch.TrapPause)
	as.LI(mips.V0, arch.SysExit)
	as.LI(mips.A0, 5)
	as.Syscall()
	code, _, _ := as.Finish()
	c, _, _, err := Launch(a, code, nil, machine.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := c.Continue()
	if err != nil || !ev.Exited || ev.Status != 5 {
		t.Fatalf("%v %v", ev, err)
	}
	// Further continues keep reporting the exit rather than wedging.
	ev, err = c.Continue()
	if err != nil || !ev.Exited {
		t.Fatalf("second continue: %v %v", ev, err)
	}
}

func TestFetchBoundsThroughProtocol(t *testing.T) {
	a := mips.Little
	as := mips.NewAsm(a)
	as.Break(arch.TrapPause)
	code, _, _ := as.Finish()
	c, _, _, err := Launch(a, code, make([]byte, 32), machine.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	// Straddling the end of a segment fails cleanly.
	if _, err := c.FetchInt(amem.Data, machine.DataBase+30, 4); err == nil {
		t.Fatal("straddling fetch accepted")
	}
	// Huge byte fetches are rejected.
	if _, err := c.FetchBytes(amem.Data, machine.DataBase, 1<<21); err == nil {
		t.Fatal("giant fetch accepted")
	}
	// After errors the connection still works.
	if _, err := c.FetchInt(amem.Data, machine.DataBase, 4); err != nil {
		t.Fatal(err)
	}
}
