package nub

import (
	"bytes"
	"net"
	"sync"
	"testing"

	"ldb/internal/amem"
	"ldb/internal/arch/mips"
	"ldb/internal/machine"
)

// TestBatchedSessionAllTargets drives fetches and stores through MBatch
// envelopes on every target and checks the results match what the
// single-shot methods return.
func TestBatchedSessionAllTargets(t *testing.T) {
	for _, a := range allArches {
		t.Run(a.Name(), func(t *testing.T) {
			code := testProgram(t, a)
			c, _, _, err := Launch(a, code, make([]byte, 64), machine.TextBase)
			if err != nil {
				t.Fatal(err)
			}
			if !c.Batching() {
				t.Fatal("nub did not advertise batch support")
			}
			b := c.NewBatch()
			s1 := b.StoreInt(amem.Data, machine.DataBase+8, 4, 0xdead)
			s2 := b.StoreInt(amem.Data, machine.DataBase+12, 2, 0xbeef)
			if err := b.Run(); err != nil {
				t.Fatal(err)
			}
			if s1.Err != nil || s2.Err != nil {
				t.Fatalf("stores: %v %v", s1.Err, s2.Err)
			}
			c.SetCaching(false) // force the fetches onto the wire
			b = c.NewBatch()
			f1 := b.FetchInt(amem.Data, machine.DataBase+8, 4)
			f2 := b.FetchInt(amem.Data, machine.DataBase+12, 2)
			f3 := b.FetchBytes(amem.Code, machine.TextBase, 8)
			bad := b.FetchInt(amem.Data, machine.DataBase+1<<16, 4)
			if err := b.Run(); err != nil {
				t.Fatal(err)
			}
			if f1.Err != nil || f1.Val != 0xdead {
				t.Errorf("f1 = %#x, %v", f1.Val, f1.Err)
			}
			if f2.Err != nil || f2.Val != 0xbeef {
				t.Errorf("f2 = %#x, %v", f2.Val, f2.Err)
			}
			if f3.Err != nil || !bytes.Equal(f3.Data, code[:8]) {
				t.Errorf("f3 = %x, %v", f3.Data, f3.Err)
			}
			// A failing member fails alone; the rest of the batch lands.
			if bad.Err == nil {
				t.Error("out-of-bounds fetch in a batch succeeded")
			}
			st := c.Stats()
			if st.Batches < 2 {
				t.Errorf("batches = %d, want >= 2", st.Batches)
			}
			if st.BatchOccupancy() < 2 {
				t.Errorf("occupancy = %.1f, want >= 2", st.BatchOccupancy())
			}
		})
	}
}

// TestBatchFallsBackOnLegacyNub pairs the client with a nub built
// before MBatch existed: everything must still work, one message at a
// time.
func TestBatchFallsBackOnLegacyNub(t *testing.T) {
	a := mips.Little
	code := testProgram(t, a)
	p := machine.New(a, code, make([]byte, 64), machine.TextBase)
	n := New(p)
	n.LegacyProtocol = true
	n.Start()
	c, err := Pair(n)
	if err != nil {
		t.Fatal(err)
	}
	if c.Batching() {
		t.Fatal("client claims batching against a legacy nub")
	}
	c.SetBatching(true) // asking again must not help
	if c.Batching() {
		t.Fatal("SetBatching overrode the nub's welcome")
	}
	b := c.NewBatch()
	s := b.StoreInt(amem.Data, machine.DataBase+8, 4, 7)
	f := b.FetchInt(amem.Data, machine.DataBase+8, 4)
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Err != nil || f.Err != nil || f.Val != 7 {
		t.Fatalf("fallback batch: %v %v val=%d", s.Err, f.Err, f.Val)
	}
	st := c.Stats()
	if st.Batches != 0 {
		t.Errorf("legacy session used %d envelopes", st.Batches)
	}
	if st.RoundTrips < 2 {
		t.Errorf("round trips = %d, want one per operation", st.RoundTrips)
	}
}

// rawSession connects a raw wire to a serving nub and consumes the
// welcome and the pending event.
func rawSession(t *testing.T, n *Nub) (net.Conn, func()) {
	t.Helper()
	a, b := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = n.Serve(a)
	}()
	w, err := ReadMsg(b)
	if err != nil || w.Kind != MWelcome {
		t.Fatalf("welcome: %v %v", w, err)
	}
	if w.Val&WelcomeBatch == 0 {
		t.Fatal("welcome does not advertise batching")
	}
	if _, err := ReadMsg(b); err != nil {
		t.Fatalf("pending event: %v", err)
	}
	return b, func() { b.Close(); <-done }
}

// TestBatchRejectsControlMembers sends envelopes carrying messages that
// may not ride in a batch: the member gets an MError, the envelope (and
// well-formed members beside it) still succeed.
func TestBatchRejectsControlMembers(t *testing.T) {
	a := mips.Little
	code := testProgram(t, a)
	p := machine.New(a, code, make([]byte, 64), machine.TextBase)
	n := New(p)
	n.Start()
	conn, shutdown := rawSession(t, n)
	defer shutdown()

	env, err := EncodeBatch(MBatch, []*Msg{
		{Kind: MContinue},
		{Kind: MFetchInt, Space: byte(amem.Data), Addr: machine.DataBase, Size: 4},
		{Kind: MKill},
		{Kind: MDetach},
		{Kind: MHello},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMsg(conn, env); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != MBatchReply {
		t.Fatalf("reply = %v", rep.Kind)
	}
	members, err := DecodeBatch(rep)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []MsgKind{MError, MValue, MError, MError, MError}
	for i, m := range members {
		if m.Kind != wantKinds[i] {
			t.Errorf("member %d = %v, want %v", i, m.Kind, wantKinds[i])
		}
	}
	// The target never ran and is still alive: a plain fetch works.
	if err := WriteMsg(conn, &Msg{Kind: MFetchInt, Space: byte(amem.Data), Addr: machine.DataBase, Size: 4}); err != nil {
		t.Fatal(err)
	}
	if rep, err = ReadMsg(conn); err != nil || rep.Kind != MValue {
		t.Fatalf("session broken after rejected members: %v %v", rep, err)
	}

	// A hand-crafted nested envelope is rejected as a whole.
	var inner bytes.Buffer
	if err := WriteMsg(&inner, &Msg{Kind: MFetchInt, Space: byte(amem.Data), Addr: machine.DataBase, Size: 4}); err != nil {
		t.Fatal(err)
	}
	var outer bytes.Buffer
	if err := WriteMsg(&outer, &Msg{Kind: MBatch, Val: 1, Data: inner.Bytes()}); err != nil {
		t.Fatal(err)
	}
	nested := &Msg{Kind: MBatch, Val: 1, Data: outer.Bytes()}
	if err := WriteMsg(conn, nested); err != nil {
		t.Fatal(err)
	}
	if rep, err = ReadMsg(conn); err != nil {
		t.Fatal(err)
	}
	// A malformed envelope is answered with a plain error for the whole
	// envelope, not a member-level one.
	if rep.Kind != MError {
		t.Fatalf("nested envelope answered with %v, want MError", rep.Kind)
	}
}

// TestLegacyNubRejectsEnvelopes: a pre-batch nub answers an MBatch with
// a plain MError, which is what tells the (misbehaving) client it never
// negotiated.
func TestLegacyNubRejectsEnvelopes(t *testing.T) {
	a := mips.Little
	code := testProgram(t, a)
	p := machine.New(a, code, make([]byte, 64), machine.TextBase)
	n := New(p)
	n.LegacyProtocol = true
	n.Start()
	conn, shutdown := func() (net.Conn, func()) {
		x, y := net.Pipe()
		done := make(chan struct{})
		go func() { defer close(done); _ = n.Serve(x) }()
		w, err := ReadMsg(y)
		if err != nil || w.Kind != MWelcome || w.Val&WelcomeBatch != 0 {
			t.Fatalf("legacy welcome: %v %v", w, err)
		}
		if _, err := ReadMsg(y); err != nil {
			t.Fatal(err)
		}
		return y, func() { y.Close(); <-done }
	}()
	defer shutdown()
	env, err := EncodeBatch(MBatch, []*Msg{{Kind: MFetchInt, Space: byte(amem.Data), Addr: machine.DataBase, Size: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMsg(conn, env); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadMsg(conn)
	if err != nil || rep.Kind != MError {
		t.Fatalf("legacy nub answered %v, %v; want MError", rep, err)
	}
}

// encodeEnvelope builds raw member bytes for hand-rolled malformed
// envelopes.
func encodeMembers(t *testing.T, msgs ...*Msg) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMsg(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestDecodeBatchMalformed table-tests the envelope decoder against
// malformed framing: every case must return an error, never panic.
func TestDecodeBatchMalformed(t *testing.T) {
	fetch := &Msg{Kind: MFetchInt, Space: byte(amem.Data), Addr: 16, Size: 4}
	one := encodeMembers(t, fetch)
	two := encodeMembers(t, fetch, fetch)
	cases := []struct {
		name string
		env  *Msg
	}{
		{"not an envelope", &Msg{Kind: MFetchInt, Val: 1, Data: one}},
		{"zero count", &Msg{Kind: MBatch, Val: 0, Data: one}},
		{"count over limit", &Msg{Kind: MBatch, Val: MaxBatch + 1, Data: one}},
		{"count exceeds payload", &Msg{Kind: MBatch, Val: 2, Data: one}},
		{"payload exceeds count", &Msg{Kind: MBatch, Val: 1, Data: two}},
		{"empty payload", &Msg{Kind: MBatch, Val: 1}},
		{"truncated member", &Msg{Kind: MBatch, Val: 1, Data: one[:len(one)-1]}},
		{"truncated header", &Msg{Kind: MBatch, Val: 1, Data: one[:5]}},
		{"nested envelope", &Msg{Kind: MBatch, Val: 1,
			Data: encodeMembers(t, &Msg{Kind: MBatch, Val: 1, Data: one})}},
		{"nested reply", &Msg{Kind: MBatchReply, Val: 1,
			Data: encodeMembers(t, &Msg{Kind: MBatchReply, Val: 1, Data: one})}},
		{"garbage payload", &Msg{Kind: MBatch, Val: 3, Data: bytes.Repeat([]byte{0xff}, 90)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeBatch(tc.env); err == nil {
				t.Errorf("decoded successfully, want error")
			}
		})
	}
}

// TestEncodeBatchLimits checks the encoder refuses what the decoder
// would reject.
func TestEncodeBatchLimits(t *testing.T) {
	fetch := &Msg{Kind: MFetchInt, Space: byte(amem.Data), Addr: 16, Size: 4}
	if _, err := EncodeBatch(MBatch, nil); err == nil {
		t.Error("empty batch encoded")
	}
	over := make([]*Msg, MaxBatch+1)
	for i := range over {
		over[i] = fetch
	}
	if _, err := EncodeBatch(MBatch, over); err == nil {
		t.Error("oversized batch encoded")
	}
	if _, err := EncodeBatch(MBatch, []*Msg{{Kind: MBatch}}); err == nil {
		t.Error("nested envelope encoded")
	}
	if _, err := EncodeBatch(MFetchInt, []*Msg{fetch}); err == nil {
		t.Error("non-envelope kind encoded")
	}
	big := &Msg{Kind: MStoreBytes, Space: byte(amem.Data), Data: make([]byte, maxDataLen/2)}
	if _, err := EncodeBatch(MBatch, []*Msg{big, big, big}); err == nil {
		t.Error("envelope over the payload limit encoded")
	}
}

// FuzzDecodeBatch fuzzes the envelope decoder: arbitrary payloads and
// counts must produce errors, never panics, and a successful decode
// must yield exactly the advertised member count.
func FuzzDecodeBatch(f *testing.F) {
	fetch := &Msg{Kind: MFetchInt, Space: byte(amem.Data), Addr: 16, Size: 4}
	var buf bytes.Buffer
	_ = WriteMsg(&buf, fetch)
	one := buf.Bytes()
	f.Add(uint32(1), one)
	f.Add(uint32(2), append(append([]byte(nil), one...), one...))
	f.Add(uint32(0), []byte{})
	f.Add(uint32(1), one[:len(one)-3])
	f.Add(uint32(600), bytes.Repeat(one, 3))
	f.Add(uint32(7), bytes.Repeat([]byte{0x41}, 64))
	f.Fuzz(func(t *testing.T, count uint32, payload []byte) {
		for _, kind := range []MsgKind{MBatch, MBatchReply} {
			env := &Msg{Kind: kind, Val: uint64(count), Data: payload}
			msgs, err := DecodeBatch(env)
			if err == nil && len(msgs) != int(count) {
				t.Fatalf("decoded %d members, envelope said %d", len(msgs), count)
			}
		}
	})
}

// TestCacheInvalidationOnContinue is the regression test for the cache
// coherence rule: memory fetched before a continue must be re-fetched
// after it, because the target ran. The test program stores 42 at
// DataBase between its two traps.
func TestCacheInvalidationOnContinue(t *testing.T) {
	a := mips.Little
	code := testProgram(t, a)
	c, _, _, err := Launch(a, code, make([]byte, 64), machine.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Caching() {
		t.Fatal("caching off by default")
	}
	v, err := c.FetchInt(amem.Data, machine.DataBase, 4)
	if err != nil || v != 0 {
		t.Fatalf("before continue: %d, %v", v, err)
	}
	// The second fetch is served from the cache.
	pre := c.Stats()
	if v, err = c.FetchInt(amem.Data, machine.DataBase, 4); err != nil || v != 0 {
		t.Fatalf("cached fetch: %d, %v", v, err)
	}
	post := c.Stats()
	if post.CacheHits <= pre.CacheHits {
		t.Fatalf("second fetch missed the cache (hits %d -> %d)", pre.CacheHits, post.CacheHits)
	}
	if post.RoundTrips != pre.RoundTrips {
		t.Fatalf("cached fetch went to the wire")
	}
	ev, err := c.Continue()
	if err != nil || ev.Exited {
		t.Fatalf("continue: %v %v", ev, err)
	}
	// The target stored 42; a stale cache would still say 0.
	v, err = c.FetchInt(amem.Data, machine.DataBase, 4)
	if err != nil || v != 42 {
		t.Fatalf("after continue: %d, %v (stale cache?)", v, err)
	}
	if got := c.Stats().Invalidations; got < post.Invalidations+1 {
		t.Errorf("invalidations = %d, want > %d", got, post.Invalidations)
	}
}

// TestPlantUnplantCacheCoherence: planting writes through the cached
// code image; unplanting evicts it, so the next fetch sees the
// restored instruction.
func TestPlantUnplantCacheCoherence(t *testing.T) {
	a := mips.Little
	code := testProgram(t, a)
	c, _, _, err := Launch(a, code, make([]byte, 64), machine.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	addr := uint32(machine.TextBase + 4)
	orig, err := c.FetchBytes(amem.Code, addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	trap := a.BreakInstr()
	if err := c.PlantStore(addr, trap); err != nil {
		t.Fatal(err)
	}
	pre := c.Stats()
	got, err := c.FetchBytes(amem.Code, addr, 4)
	if err != nil || !bytes.Equal(got, trap) {
		t.Fatalf("after plant: %x, %v; want %x", got, err, trap)
	}
	if c.Stats().RoundTrips != pre.RoundTrips {
		t.Error("fetch after plant went to the wire; write-through failed")
	}
	if err := c.UnplantStore(addr); err != nil {
		t.Fatal(err)
	}
	got, err = c.FetchBytes(amem.Code, addr, 4)
	if err != nil || !bytes.Equal(got, orig) {
		t.Fatalf("after unplant: %x, %v; want %x", got, err, orig)
	}
}

// TestStoreWritesThroughCache: a store followed by a fetch of the same
// address returns the stored value without a round trip.
func TestStoreWritesThroughCache(t *testing.T) {
	a := mips.Little
	code := testProgram(t, a)
	c, _, _, err := Launch(a, code, make([]byte, 64), machine.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	// Populate the cache around the address first.
	if _, err := c.FetchBytes(amem.Data, machine.DataBase, 32); err != nil {
		t.Fatal(err)
	}
	if err := c.StoreInt(amem.Data, machine.DataBase+4, 4, 0x1234); err != nil {
		t.Fatal(err)
	}
	pre := c.Stats()
	v, err := c.FetchInt(amem.Data, machine.DataBase+4, 4)
	if err != nil || v != 0x1234 {
		t.Fatalf("fetch after store: %#x, %v", v, err)
	}
	if c.Stats().RoundTrips != pre.RoundTrips {
		t.Error("fetch after store went to the wire")
	}
	// And the wire agrees once the cache is dropped.
	c.SetCaching(false)
	if v, err = c.FetchInt(amem.Data, machine.DataBase+4, 4); err != nil || v != 0x1234 {
		t.Fatalf("wire disagrees with cache: %#x, %v", v, err)
	}
}

// TestStatsConcurrentReaders hammers the wire while other goroutines
// snapshot and reset the counters — meaningful only under -race, where
// any unsynchronized counter access fails the build.
func TestStatsConcurrentReaders(t *testing.T) {
	a := mips.Little
	code := testProgram(t, a)
	c, n, _, err := Launch(a, code, make([]byte, 64), machine.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = c.Stats()
					_ = n.Stats.Snapshot()
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		b := c.NewBatch()
		b.FetchInt(amem.Data, machine.DataBase, 4)
		b.FetchBytes(amem.Code, machine.TextBase, 8)
		if err := b.Run(); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			c.ResetStats()
		}
	}
	close(stop)
	wg.Wait()
}

// TestFetchLineTruncatesAtSegmentEnd: a readahead line that runs past
// the end of its segment comes back short instead of failing, an exact
// fetch of the same span still fails, and a line aimed at unmapped
// memory is an error. The request also rides inside envelopes.
func TestFetchLineTruncatesAtSegmentEnd(t *testing.T) {
	a := mips.Little
	code := testProgram(t, a)
	p := machine.New(a, code, make([]byte, 64), machine.TextBase)
	n := New(p)
	n.Start()
	conn, shutdown := rawSession(t, n)
	defer shutdown()
	ask := func(m *Msg) *Msg {
		t.Helper()
		if err := WriteMsg(conn, m); err != nil {
			t.Fatal(err)
		}
		rep, err := ReadMsg(conn)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	// The data segment is 64 bytes; ask for a 256-byte line at +32.
	rep := ask(&Msg{Kind: MFetchLine, Space: byte(amem.Data), Addr: machine.DataBase + 32, Size: 256})
	if rep.Kind != MBytes || len(rep.Data) != 32 {
		t.Fatalf("line past segment end: %v (%d bytes), want 32 bytes", rep.Kind, len(rep.Data))
	}
	// The same span as an exact fetch must still fail.
	if rep := ask(&Msg{Kind: MFetchBytes, Space: byte(amem.Data), Addr: machine.DataBase + 32, Size: 256}); rep.Kind != MError {
		t.Fatalf("exact fetch past segment end: %v, want MError", rep.Kind)
	}
	// A line wholly inside the segment comes back full-length.
	if rep := ask(&Msg{Kind: MFetchLine, Space: byte(amem.Data), Addr: machine.DataBase, Size: 16}); rep.Kind != MBytes || len(rep.Data) != 16 {
		t.Fatalf("interior line: %v (%d bytes), want 16", rep.Kind, len(rep.Data))
	}
	// Unmapped base: error, like any fetch.
	if rep := ask(&Msg{Kind: MFetchLine, Space: byte(amem.Data), Addr: 0x100, Size: 64}); rep.Kind != MError {
		t.Fatalf("unmapped line: %v, want MError", rep.Kind)
	}
	// Inside an envelope it behaves the same.
	env, err := EncodeBatch(MBatch, []*Msg{
		{Kind: MFetchLine, Space: byte(amem.Data), Addr: machine.DataBase + 48, Size: 256},
		{Kind: MFetchInt, Space: byte(amem.Data), Addr: machine.DataBase, Size: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep = ask(env)
	if rep.Kind != MBatchReply {
		t.Fatalf("envelope reply: %v", rep.Kind)
	}
	subs, err := DecodeBatch(rep)
	if err != nil {
		t.Fatal(err)
	}
	if subs[0].Kind != MBytes || len(subs[0].Data) != 16 {
		t.Fatalf("batched line: %v (%d bytes), want 16", subs[0].Kind, len(subs[0].Data))
	}
	if subs[1].Kind != MValue {
		t.Fatalf("batched fetch beside line: %v", subs[1].Kind)
	}
}

// TestLegacyNubRejectsFetchLine: a pre-batch nub does not know the
// readahead request — and a client that honors the welcome never sends
// one, so its cached fetches still work against such a nub.
func TestLegacyNubRejectsFetchLine(t *testing.T) {
	a := mips.Little
	code := testProgram(t, a)
	p := machine.New(a, code, make([]byte, 64), machine.TextBase)
	n := New(p)
	n.LegacyProtocol = true
	n.Start()
	x, y := net.Pipe()
	done := make(chan struct{})
	go func() { defer close(done); _ = n.Serve(x) }()
	defer func() { y.Close(); <-done }()
	if w, err := ReadMsg(y); err != nil || w.Kind != MWelcome || w.Val&WelcomeBatch != 0 {
		t.Fatalf("legacy welcome: %v %v", w, err)
	}
	if _, err := ReadMsg(y); err != nil {
		t.Fatal(err)
	}
	if err := WriteMsg(y, &Msg{Kind: MFetchLine, Space: byte(amem.Data), Addr: machine.DataBase, Size: 64}); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadMsg(y)
	if err != nil || rep.Kind != MError {
		t.Fatalf("legacy nub answered %v, %v; want MError", rep, err)
	}
}

// TestCachedFetchAgainstLegacyNub: with caching on but no negotiated
// capability, the client skips readahead entirely and still serves
// correct values (one exact fetch per cold word).
func TestCachedFetchAgainstLegacyNub(t *testing.T) {
	a := mips.Little
	code := testProgram(t, a)
	p := machine.New(a, code, make([]byte, 64), machine.TextBase)
	n := New(p)
	n.LegacyProtocol = true
	n.Start()
	c, err := Pair(n)
	if err != nil {
		t.Fatal(err)
	}
	c.SetCaching(true)
	if err := c.StoreInt(amem.Data, machine.DataBase+4, 4, 99); err != nil {
		t.Fatal(err)
	}
	v, err := c.FetchInt(amem.Data, machine.DataBase+4, 4)
	if err != nil || v != 99 {
		t.Fatalf("cached fetch via legacy nub: %d, %v", v, err)
	}
	before := c.Stats().RoundTrips
	if v, err := c.FetchInt(amem.Data, machine.DataBase+4, 4); err != nil || v != 99 {
		t.Fatalf("re-fetch: %d, %v", v, err)
	}
	if rt := c.Stats().RoundTrips; rt != before {
		t.Errorf("cache hit cost %d round trips", rt-before)
	}
}

// TestFetchIntAtSegmentEdge: with the full optimized transport on, a
// fetch of the last word of a segment works (the readahead line comes
// back truncated but covering it), and a fetch straddling the segment
// end fails with the same error the plain transport reports.
func TestFetchIntAtSegmentEdge(t *testing.T) {
	a := mips.Little
	run := func(optimized bool) (uint64, error, string) {
		code := testProgram(t, a)
		p := machine.New(a, code, make([]byte, 64), machine.TextBase)
		n := New(p)
		n.Start()
		c, err := Pair(n)
		if err != nil {
			t.Fatal(err)
		}
		c.SetBatching(optimized)
		c.SetCaching(optimized)
		v, verr := c.FetchInt(amem.Data, machine.DataBase+60, 4)
		if verr != nil {
			t.Fatalf("optimized=%v: last word: %v", optimized, verr)
		}
		_, serr := c.FetchInt(amem.Data, machine.DataBase+62, 4)
		if serr == nil {
			t.Fatalf("optimized=%v: straddling fetch succeeded", optimized)
		}
		return v, verr, serr.Error()
	}
	vOn, _, errOn := run(true)
	vOff, _, errOff := run(false)
	if vOn != vOff {
		t.Errorf("last-word value differs: %d optimized, %d plain", vOn, vOff)
	}
	if errOn != errOff {
		t.Errorf("straddle error differs:\noptimized: %s\nplain:     %s", errOn, errOff)
	}
}
