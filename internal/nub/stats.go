package nub

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Stats counts wire-level activity. The counters are atomic so the nub
// goroutine, the client, and anyone printing them race-freely; a Stats
// must not be copied once in use.
type Stats struct {
	RoundTrips    atomic.Int64 // request/reply exchanges on the wire
	MsgsSent      atomic.Int64 // messages written (envelopes count once)
	MsgsReceived  atomic.Int64 // messages read (envelopes count once)
	BytesSent     atomic.Int64
	BytesReceived atomic.Int64
	Batches       atomic.Int64 // MBatch envelopes exchanged
	BatchedMsgs   atomic.Int64 // member messages carried inside envelopes
	CacheHits     atomic.Int64 // fetches served from the client cache
	CacheMisses   atomic.Int64 // fetches that had to go to the wire
	Invalidations atomic.Int64 // whole-cache flushes (one per continue)
	Timeouts      atomic.Int64 // requests killed by the wire deadline
	Reconnects    atomic.Int64 // successful redial + re-attach cycles
	ReconnectFails atomic.Int64 // reconnect cycles that gave up
	Replays       atomic.Int64 // requests transparently re-sent after a reconnect

	// Server-side robustness counters: the nub increments these while
	// surviving hostile or broken input, and serves them over the wire
	// via MServerStats.
	RecoveredPanics atomic.Int64 // request handlers that panicked and were contained
	MalformedFrames atomic.Int64 // requests rejected by validation before dispatch
	OversizeRejects atomic.Int64 // frames whose declared payload exceeded the cap
	SlowReads       atomic.Int64 // connections dropped by the server read deadline
	CtxFaults       atomic.Int64 // context save/restore failures latched as target faults
}

// StatsSnapshot is a plain-value copy of the counters, safe to compare
// and print.
type StatsSnapshot struct {
	RoundTrips    int64
	MsgsSent      int64
	MsgsReceived  int64
	BytesSent     int64
	BytesReceived int64
	Batches       int64
	BatchedMsgs   int64
	CacheHits     int64
	CacheMisses   int64
	Invalidations int64
	Timeouts       int64
	Reconnects     int64
	ReconnectFails int64
	Replays        int64

	RecoveredPanics int64
	MalformedFrames int64
	OversizeRejects int64
	SlowReads       int64
	CtxFaults       int64
}

// Snapshot reads every counter atomically (individually, not as a
// consistent cut — these are diagnostics, not accounting).
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		RoundTrips:    s.RoundTrips.Load(),
		MsgsSent:      s.MsgsSent.Load(),
		MsgsReceived:  s.MsgsReceived.Load(),
		BytesSent:     s.BytesSent.Load(),
		BytesReceived: s.BytesReceived.Load(),
		Batches:       s.Batches.Load(),
		BatchedMsgs:   s.BatchedMsgs.Load(),
		CacheHits:     s.CacheHits.Load(),
		CacheMisses:   s.CacheMisses.Load(),
		Invalidations: s.Invalidations.Load(),
		Timeouts:       s.Timeouts.Load(),
		Reconnects:     s.Reconnects.Load(),
		ReconnectFails: s.ReconnectFails.Load(),
		Replays:        s.Replays.Load(),

		RecoveredPanics: s.RecoveredPanics.Load(),
		MalformedFrames: s.MalformedFrames.Load(),
		OversizeRejects: s.OversizeRejects.Load(),
		SlowReads:       s.SlowReads.Load(),
		CtxFaults:       s.CtxFaults.Load(),
	}
}

// Reset zeroes every counter.
func (s *Stats) Reset() {
	s.RoundTrips.Store(0)
	s.MsgsSent.Store(0)
	s.MsgsReceived.Store(0)
	s.BytesSent.Store(0)
	s.BytesReceived.Store(0)
	s.Batches.Store(0)
	s.BatchedMsgs.Store(0)
	s.CacheHits.Store(0)
	s.CacheMisses.Store(0)
	s.Invalidations.Store(0)
	s.Timeouts.Store(0)
	s.Reconnects.Store(0)
	s.ReconnectFails.Store(0)
	s.Replays.Store(0)
	s.RecoveredPanics.Store(0)
	s.MalformedFrames.Store(0)
	s.OversizeRejects.Store(0)
	s.SlowReads.Store(0)
	s.CtxFaults.Store(0)
}

// BatchOccupancy is the mean number of member messages per envelope.
func (s StatsSnapshot) BatchOccupancy() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedMsgs) / float64(s.Batches)
}

func (s StatsSnapshot) String() string {
	return fmt.Sprintf(
		"round trips %d\nmessages    %d sent, %d received\nbytes       %d sent, %d received\nbatches     %d (%d messages, %.1f avg occupancy)\ncache       %d hits, %d misses, %d invalidations\nrobustness  %d reconnects (%d failed), %d replays, %d timeouts",
		s.RoundTrips, s.MsgsSent, s.MsgsReceived, s.BytesSent, s.BytesReceived,
		s.Batches, s.BatchedMsgs, s.BatchOccupancy(),
		s.CacheHits, s.CacheMisses, s.Invalidations,
		s.Reconnects, s.ReconnectFails, s.Replays, s.Timeouts)
}

// countRW wraps a connection, crediting raw byte counts to a Stats.
type countRW struct {
	rw io.ReadWriter
	s  *Stats
}

func (c *countRW) Read(p []byte) (int, error) {
	n, err := c.rw.Read(p)
	c.s.BytesReceived.Add(int64(n))
	return n, err
}

func (c *countRW) Write(p []byte) (int, error) {
	n, err := c.rw.Write(p)
	c.s.BytesSent.Add(int64(n))
	return n, err
}

func (c *countRW) Close() error {
	if closer, ok := c.rw.(interface{ Close() error }); ok {
		return closer.Close()
	}
	return nil
}
