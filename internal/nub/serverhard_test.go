package nub

import (
	"bytes"
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"

	"ldb/internal/amem"
	"ldb/internal/arch"
	"ldb/internal/arch/mips"
	"ldb/internal/machine"
)

// rawServe starts a nub for a paused mips target and hands back a raw
// wire into its Serve loop, with the welcome and first event already
// consumed — the vantage point of a peer that speaks frames directly.
func rawServe(t *testing.T, timeout time.Duration) (*Nub, net.Conn, func()) {
	t.Helper()
	a := mips.Little
	p := machine.New(a, testProgram(t, a), make([]byte, 64), machine.TextBase)
	n := New(p)
	n.ReadTimeout = timeout
	n.Start()
	srv, cli := net.Pipe()
	done := make(chan struct{})
	go func() {
		_ = n.Serve(srv)
		_ = srv.Close()
		close(done)
	}()
	if m, err := ReadMsg(cli); err != nil || m.Kind != MWelcome {
		t.Fatalf("welcome = %v %v", m, err)
	}
	if m, err := ReadMsg(cli); err != nil || m.Kind != MEvent {
		t.Fatalf("first event = %v %v", m, err)
	}
	return n, cli, func() {
		_ = cli.Close()
		<-done
	}
}

// roundtripRaw writes one request frame and reads one reply frame.
func roundtripRaw(t *testing.T, conn net.Conn, req *Msg) *Msg {
	t.Helper()
	if err := WriteMsg(conn, req); err != nil {
		t.Fatalf("write %v: %v", req.Kind, err)
	}
	rep, err := ReadMsg(conn)
	if err != nil {
		t.Fatalf("read reply to %v: %v", req.Kind, err)
	}
	return rep
}

// serverCounters asks the serving nub for its robustness counters over
// the wire (the MServerStats enrichment) and parses the reply.
func serverCounters(t *testing.T, conn net.Conn) (recovered, malformed, oversize, slow, ctx int64) {
	t.Helper()
	rep := roundtripRaw(t, conn, &Msg{Kind: MServerStats})
	if rep.Kind != MServerStatsReply || len(rep.Data) != 40 {
		t.Fatalf("serverstats reply = %v (%d bytes)", rep.Kind, len(rep.Data))
	}
	vals := make([]int64, 5)
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(rep.Data[8*i : 8*i+8]))
	}
	return vals[0], vals[1], vals[2], vals[3], vals[4]
}

// TestUnknownRequestKindsRejected: unassigned kind bytes, reply kinds
// arriving as requests, and out-of-range spaces must each draw an error
// reply, count as malformed frames, and leave the connection usable.
func TestUnknownRequestKindsRejected(t *testing.T) {
	n, cli, stop := rawServe(t, -1)
	defer stop()
	bad := []*Msg{
		{Kind: MsgKind(200)},                                // unassigned kind byte
		{Kind: MWelcome},                                    // a reply kind as a request
		{Kind: MValue, Val: 7},                              // another reply kind
		{Kind: MFetchInt, Space: 'z', Addr: 0x1000, Size: 4}, // bogus space
	}
	for _, m := range bad {
		rep := roundtripRaw(t, cli, m)
		if rep.Kind != MError {
			t.Fatalf("%v drew %v, want MError", m.Kind, rep.Kind)
		}
	}
	// The connection survived: a valid fetch still works.
	rep := roundtripRaw(t, cli, &Msg{Kind: MFetchInt, Space: byte(amem.Data), Addr: machine.DataBase, Size: 4})
	if rep.Kind != MValue {
		t.Fatalf("fetch after rejects = %v", rep.Kind)
	}
	if got := n.Stats.MalformedFrames.Load(); got != int64(len(bad)) {
		t.Fatalf("MalformedFrames = %d, want %d", got, len(bad))
	}
	// And the counters travel over the wire.
	_, malformed, _, _, _ := serverCounters(t, cli)
	if malformed != int64(len(bad)) {
		t.Fatalf("wire MalformedFrames = %d, want %d", malformed, len(bad))
	}
}

// TestHandlerPanicContained: a corrupted segment list makes a handler
// panic; the panic must become an MError reply and a counter, and the
// target must stay debuggable on the same connection (§4.2: the nub
// must not take the target down with it).
func TestHandlerPanicContained(t *testing.T) {
	n, cli, stop := rawServe(t, -1)
	defer stop()
	// Corrupt the process: a nil segment makes the MFetchLine scan
	// dereference nil.
	n.P.Segs = append(n.P.Segs, nil)
	rep := roundtripRaw(t, cli, &Msg{Kind: MFetchLine, Space: byte(amem.Data), Addr: 0x10, Size: 16})
	if rep.Kind != MError || !strings.Contains(string(rep.Data), "recovered from panic") {
		t.Fatalf("reply = %v %q", rep.Kind, rep.Data)
	}
	if n.Stats.RecoveredPanics.Load() != 1 {
		t.Fatalf("RecoveredPanics = %d", n.Stats.RecoveredPanics.Load())
	}
	// Heal the segment list: everything still works.
	n.P.Segs = n.P.Segs[:len(n.P.Segs)-1]
	rep = roundtripRaw(t, cli, &Msg{Kind: MFetchInt, Space: byte(amem.Data), Addr: machine.DataBase, Size: 4})
	if rep.Kind != MValue {
		t.Fatalf("fetch after panic = %v", rep.Kind)
	}
}

// TestBatchMemberPanicContained: a panicking member inside an MBatch
// envelope draws that member an error reply while the other members
// complete normally.
func TestBatchMemberPanicContained(t *testing.T) {
	n, cli, stop := rawServe(t, -1)
	defer stop()
	n.P.Segs = append(n.P.Segs, nil)
	env, err := EncodeBatch(MBatch, []*Msg{
		{Kind: MFetchInt, Space: byte(amem.Data), Addr: machine.DataBase, Size: 4},
		{Kind: MFetchLine, Space: byte(amem.Data), Addr: 0x10, Size: 16}, // panics
		{Kind: MFetchInt, Space: byte(amem.Data), Addr: machine.DataBase + 4, Size: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := roundtripRaw(t, cli, env)
	if rep.Kind != MBatchReply {
		t.Fatalf("reply = %v %q", rep.Kind, rep.Data)
	}
	reps, err := DecodeBatch(rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("members = %d", len(reps))
	}
	if reps[0].Kind != MValue || reps[2].Kind != MValue {
		t.Fatalf("healthy members = %v, %v", reps[0].Kind, reps[2].Kind)
	}
	if reps[1].Kind != MError || !strings.Contains(string(reps[1].Data), "recovered from panic") {
		t.Fatalf("panicking member = %v %q", reps[1].Kind, reps[1].Data)
	}
	if n.Stats.RecoveredPanics.Load() != 1 {
		t.Fatalf("RecoveredPanics = %d", n.Stats.RecoveredPanics.Load())
	}
}

// TestContextFaultLatched: when the target's context area is unmapped —
// the nub's data lives in user space where the program can destroy it —
// a resume must latch a SIGSEGV at the context address instead of
// panicking the server.
func TestContextFaultLatched(t *testing.T) {
	n, cli, stop := rawServe(t, -1)
	defer stop()
	// Unmap the nub's context segment.
	for i, s := range n.P.Segs {
		if s.Name == "nub" {
			n.P.Segs = append(n.P.Segs[:i], n.P.Segs[i+1:]...)
			break
		}
	}
	rep := roundtripRaw(t, cli, &Msg{Kind: MContinue})
	if rep.Kind != MEvent || rep.Sig != int32(arch.SigSegv) || rep.Addr != n.CtxAddr() {
		t.Fatalf("reply = %v sig=%d addr=%#x", rep.Kind, rep.Sig, rep.Addr)
	}
	if n.Stats.CtxFaults.Load() == 0 {
		t.Fatal("CtxFaults not counted")
	}
	// The serving loop survived: requests still work.
	rep = roundtripRaw(t, cli, &Msg{Kind: MFetchInt, Space: byte(amem.Data), Addr: machine.DataBase, Size: 4})
	if rep.Kind != MValue {
		t.Fatalf("fetch after ctx fault = %v", rep.Kind)
	}
}

// TestOversizeFrameRepliesThenCloses: a frame declaring a payload past
// the cap cannot be drained (the length is attacker-chosen), so the nub
// must reply with an error and close the connection — and never
// allocate the declared size.
func TestOversizeFrameRepliesThenCloses(t *testing.T) {
	n, cli, stop := rawServe(t, -1)
	defer stop()
	var b bytes.Buffer
	if err := WriteMsg(&b, &Msg{Kind: MFetchBytes, Space: byte(amem.Data)}); err != nil {
		t.Fatal(err)
	}
	frame := b.Bytes()
	// Patch the length word (the 4 bytes after the 27-byte header).
	frame[27], frame[28], frame[29], frame[30] = 0xff, 0xff, 0xff, 0x7f
	if _, err := cli.Write(frame); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadMsg(cli)
	if err != nil || rep.Kind != MError {
		t.Fatalf("oversize reply = %v %v", rep, err)
	}
	if _, err := ReadMsg(cli); err == nil {
		t.Fatal("connection stayed open after an oversize frame")
	}
	if n.Stats.OversizeRejects.Load() != 1 {
		t.Fatalf("OversizeRejects = %d", n.Stats.OversizeRejects.Load())
	}
}

// TestSlowlorisDropped: a peer that opens a frame and then trickles
// nothing must be cut off by the server read deadline rather than
// pinning the nub forever. The idle wait BEFORE a frame stays
// unbounded — only a started frame is on the clock.
func TestSlowlorisDropped(t *testing.T) {
	n, cli, stop := rawServe(t, 100*time.Millisecond)
	defer stop()
	// Idle longer than the deadline: the connection must survive —
	// waiting at the prompt is not an attack.
	time.Sleep(250 * time.Millisecond)
	rep := roundtripRaw(t, cli, &Msg{Kind: MFetchInt, Space: byte(amem.Data), Addr: machine.DataBase, Size: 4})
	if rep.Kind != MValue {
		t.Fatalf("fetch after idling = %v", rep.Kind)
	}
	// Now start a frame and stall.
	if _, err := cli.Write([]byte{byte(MFetchInt)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	_ = cli.SetReadDeadline(deadline)
	if _, err := ReadMsg(cli); err == nil {
		t.Fatal("server kept a stalled frame alive")
	}
	if time.Now().After(deadline) {
		t.Fatal("server did not drop the stalled frame within 5s")
	}
	if n.Stats.SlowReads.Load() != 1 {
		t.Fatalf("SlowReads = %d", n.Stats.SlowReads.Load())
	}
}

// TestStepInst: the machine-level single step retires exactly one
// instruction and reports SIGTRAP with code TrapStep; stepping into the
// exit syscall reports the exit.
func TestStepInst(t *testing.T) {
	a := mips.Little
	as := mips.NewAsm(a)
	as.Break(arch.TrapPause)
	as.LI(mips.V0, arch.SysExit)
	as.LI(mips.A0, 3)
	as.Syscall()
	code, _, err := as.Finish()
	if err != nil {
		t.Fatal(err)
	}
	c, _, p, err := Launch(a, code, nil, machine.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	pc := p.PC()
	for i := 0; i < 2; i++ {
		ev, err := c.StepInst()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Exited || ev.Sig != arch.SigTrap || ev.Code != arch.TrapStep {
			t.Fatalf("step %d event = %v", i, ev)
		}
		if ev.PC == pc {
			t.Fatalf("step %d did not advance from %#x", i, pc)
		}
		pc = ev.PC
	}
	ev, err := c.StepInst()
	if err != nil || !ev.Exited || ev.Status != 3 {
		t.Fatalf("final step = %v %v", ev, err)
	}
	// Stepping an exited target keeps reporting the exit.
	ev, err = c.StepInst()
	if err != nil || !ev.Exited {
		t.Fatalf("step after exit = %v %v", ev, err)
	}
}

// TestLegacyNubRefusesStepInstAndServerStats: both ride the batch
// capability bit, so a nub predating it answers with a clean error.
func TestLegacyNubRefusesStepInstAndServerStats(t *testing.T) {
	a := mips.Little
	p := machine.New(a, testProgram(t, a), make([]byte, 64), machine.TextBase)
	n := New(p)
	n.LegacyProtocol = true
	n.Start()
	x, y := net.Pipe()
	go n.Serve(x)
	c, err := Connect(y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StepInst(); err == nil || !strings.Contains(err.Error(), "unknown request") {
		t.Fatalf("legacy StepInst err = %v", err)
	}
	if _, err := c.ServerStats(); err == nil {
		t.Fatal("legacy nub answered MServerStats")
	}
}

// TestServeListenerClientChurn: debuggers connecting, working, and
// detaching in sequence must see one continuous target — memory writes
// and planted breakpoints survive the churn.
func TestServeListenerClientChurn(t *testing.T) {
	_, addr, stop := liveNub(t)
	defer stop()
	bpAddr := uint32(machine.TextBase + 8)

	c1, _, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.StoreInt(amem.Data, machine.DataBase, 4, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if err := c1.PlantStore(bpAddr, []byte{0, 0, 0, 0xd}); err != nil {
		t.Fatal(err)
	}
	if err := c1.Detach(); err != nil {
		t.Fatal(err)
	}
	_ = c1.Close()

	c2, _, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.SetCaching(false)
	v, err := c2.FetchInt(amem.Data, machine.DataBase, 4)
	if err != nil || uint32(v) != 0xdeadbeef {
		t.Fatalf("value across churn = %#x %v", v, err)
	}
	recs, err := c2.ListPlanted()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.Addr == bpAddr {
			found = true
		}
	}
	if !found {
		t.Fatalf("breakpoint at %#x lost across churn: %v", bpAddr, recs)
	}
}

// TestShutdownUnblocksAccept: Shutdown must wake a ServeListener parked
// in Accept and refuse further connections.
func TestShutdownUnblocksAccept(t *testing.T) {
	a := mips.Little
	p := machine.New(a, testProgram(t, a), make([]byte, 64), machine.TextBase)
	n := New(p)
	n.Start()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		n.ServeListener(l)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond) // let it park in Accept
	n.Shutdown()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Shutdown did not unblock Accept")
	}
	if _, err := net.Dial("tcp", l.Addr().String()); err == nil {
		t.Fatal("listener accepted a connection after Shutdown")
	}
}

// TestShutdownGraceful: a Shutdown issued while a debugger is connected
// drains that connection instead of letting the idle read pin the serve
// goroutine forever — requests already delivered finish with their
// replies, the idle connection closes, ServeListener exits without
// waiting for a detach — and target state is preserved (shutdown severs
// the endpoint, it does not kill the target).
func TestShutdownGraceful(t *testing.T) {
	a := mips.Little
	p := machine.New(a, testProgram(t, a), make([]byte, 64), machine.TextBase)
	n := New(p)
	n.Start()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		n.ServeListener(l)
		close(done)
	}()
	c, _, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.SetCaching(false)
	c.SetRetries(1)
	// The live connection services requests up to the shutdown.
	if _, err := c.FetchInt(amem.Data, machine.DataBase, 4); err != nil {
		t.Fatalf("fetch before shutdown: %v", err)
	}
	n.Shutdown()
	// The connection is idle (the client sits at its prompt), so the
	// drain closes it: ServeListener exits without a detach.
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("idle connection pinned ServeListener past Shutdown")
	}
	_ = c.Close()
	if n.P.State == machine.StateExited {
		t.Fatal("Shutdown killed the target")
	}
}
