package nub

import (
	"errors"
	"fmt"

	"ldb/internal/amem"
)

// Batch queues fetch and store requests and flushes them to the nub in
// as few round trips as possible: one MBatch envelope per MaxBatch
// requests when the nub advertised batch support, or the plain
// one-message-at-a-time protocol when it did not (old nubs keep
// working; only the round-trip count differs). Results land in the
// *IntRes / *BytesRes / *OKRes handles returned when an operation was
// queued, after Run returns.
//
// Cache interplay mirrors the Client's single-shot methods: queued
// fetches that the cache can serve never reach the wire, fetched bytes
// populate the cache, and stores write through it.
type Batch struct {
	c   *Client
	ops []batchOp
}

// IntRes receives a queued integer fetch's result.
type IntRes struct {
	Val uint64
	Err error
}

// BytesRes receives a queued byte fetch's result.
type BytesRes struct {
	Data []byte
	Err  error
}

// OKRes receives a queued store's result.
type OKRes struct {
	Err error
}

type batchOp struct {
	req  *Msg
	want MsgKind
	done bool              // already satisfied (by the cache)
	fin  func(*Msg, error) // deliver reply or error
}

// NewBatch starts an empty batch.
func (c *Client) NewBatch() *Batch { return &Batch{c: c} }

// FetchInt queues a size-byte integer fetch.
func (b *Batch) FetchInt(space amem.Space, addr uint32, size int) *IntRes {
	r := &IntRes{}
	c := b.c
	if c.cache != nil && cacheable(space) {
		if v, ok := c.cache.serveInt(c.order, space, addr, size); ok {
			c.stats.CacheHits.Add(1)
			r.Val = v
			b.ops = append(b.ops, batchOp{done: true})
			return r
		}
		c.stats.CacheMisses.Add(1)
	}
	b.ops = append(b.ops, batchOp{
		req:  &Msg{Kind: MFetchInt, Space: byte(space), Addr: addr, Size: uint32(size)},
		want: MValue,
		fin: func(rep *Msg, err error) {
			if err != nil {
				r.Err = err
				return
			}
			r.Val = rep.Val
			if c.cache != nil && cacheable(space) && c.order != nil && size > 0 && size <= 4 {
				buf := make([]byte, size)
				amem.WriteInt(c.order, buf, rep.Val)
				c.cache.insert(space, addr, buf)
			}
		},
	})
	return r
}

// FetchBytes queues an n-byte raw fetch.
func (b *Batch) FetchBytes(space amem.Space, addr uint32, n int) *BytesRes {
	r := &BytesRes{}
	c := b.c
	if c.cache != nil && cacheable(space) && n > 0 {
		if data, ok := c.cache.lookup(space, addr, n); ok {
			c.stats.CacheHits.Add(1)
			r.Data = append([]byte(nil), data...)
			b.ops = append(b.ops, batchOp{done: true})
			return r
		}
		c.stats.CacheMisses.Add(1)
	}
	b.ops = append(b.ops, batchOp{
		req:  &Msg{Kind: MFetchBytes, Space: byte(space), Addr: addr, Size: uint32(n)},
		want: MBytes,
		fin: func(rep *Msg, err error) {
			if err != nil {
				r.Err = err
				return
			}
			r.Data = rep.Data
			if c.cache != nil && cacheable(space) {
				c.cache.insert(space, addr, rep.Data)
			}
		},
	})
	return r
}

// StoreInt queues a size-byte integer store.
func (b *Batch) StoreInt(space amem.Space, addr uint32, size int, val uint64) *OKRes {
	r := &OKRes{}
	c := b.c
	b.ops = append(b.ops, batchOp{
		req:  &Msg{Kind: MStoreInt, Space: byte(space), Addr: addr, Size: uint32(size), Val: val},
		want: MOK,
		fin: func(_ *Msg, err error) {
			r.Err = err
			if err == nil {
				c.writeThroughInt(space, addr, size, val)
			}
		},
	})
	return r
}

// StoreBytes queues a raw byte store.
func (b *Batch) StoreBytes(space amem.Space, addr uint32, data []byte) *OKRes {
	r := &OKRes{}
	c := b.c
	stored := append([]byte(nil), data...)
	b.ops = append(b.ops, batchOp{
		req:  &Msg{Kind: MStoreBytes, Space: byte(space), Addr: addr, Data: stored},
		want: MOK,
		fin: func(_ *Msg, err error) {
			r.Err = err
			if err == nil && c.cache != nil && cacheable(space) {
				c.cache.patch(space, addr, stored)
			}
		},
	})
	return r
}

// PlantStore queues a breakpoint-planting store (§7.1).
func (b *Batch) PlantStore(addr uint32, trap []byte) *OKRes {
	r := &OKRes{}
	c := b.c
	stored := append([]byte(nil), trap...)
	b.ops = append(b.ops, batchOp{
		req:  &Msg{Kind: MPlantStore, Space: byte(amem.Code), Addr: addr, Data: stored},
		want: MOK,
		fin: func(_ *Msg, err error) {
			r.Err = err
			if err == nil && c.cache != nil {
				c.cache.patch(amem.Code, addr, stored)
			}
		},
	})
	return r
}

// UnplantStore queues a breakpoint removal (§7.1).
func (b *Batch) UnplantStore(addr uint32) *OKRes {
	r := &OKRes{}
	c := b.c
	b.ops = append(b.ops, batchOp{
		req:  &Msg{Kind: MUnplantStore, Space: byte(amem.Code), Addr: addr},
		want: MOK,
		fin: func(_ *Msg, err error) {
			r.Err = err
			if err == nil && c.cache != nil {
				c.cache.invalidate(amem.Code, addr, 16)
			}
		},
	})
	return r
}

// Run flushes the batch. The returned error reports transport failure
// only; per-operation outcomes (a fetch of an unmapped address, say)
// land in the individual result handles. After Run the batch is spent.
func (b *Batch) Run() error {
	var pend []batchOp
	for _, op := range b.ops {
		if !op.done {
			pend = append(pend, op)
		}
	}
	b.ops = nil
	for len(pend) > 0 {
		n := min(len(pend), MaxBatch)
		if err := b.c.flushChunk(pend[:n]); err != nil {
			return err
		}
		pend = pend[n:]
	}
	return nil
}

// flushChunk sends up to MaxBatch operations: one envelope when
// batching is negotiated and there is more than one operation,
// otherwise individual round trips.
func (c *Client) flushChunk(ops []batchOp) error {
	if !c.Batching() || len(ops) < 2 {
		for _, op := range ops {
			rep, err := c.roundTrip(op.req, op.want)
			op.fin(rep, err)
		}
		return nil
	}
	reqs := make([]*Msg, len(ops))
	for i, op := range ops {
		reqs[i] = op.req
	}
	env, err := EncodeBatch(MBatch, reqs)
	if err != nil {
		return err
	}
	rep, err := c.roundTrip(env, MBatchReply)
	if err != nil {
		return err
	}
	c.stats.Batches.Add(1)
	c.stats.BatchedMsgs.Add(int64(len(ops)))
	reps, err := DecodeBatch(rep)
	if err != nil {
		return err
	}
	if len(reps) != len(ops) {
		return fmt.Errorf("nub: batch of %d requests got %d replies", len(ops), len(reps))
	}
	for i, op := range ops {
		sub := reps[i]
		switch {
		case sub.Kind == MError:
			op.fin(nil, errors.New("nub: "+string(sub.Data)))
		case sub.Kind != op.want:
			op.fin(nil, fmt.Errorf("nub: expected %v, got %v", op.want, sub.Kind))
		default:
			op.fin(sub, nil)
		}
	}
	return nil
}
