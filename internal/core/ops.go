package core

import (
	"fmt"

	"ldb/internal/amem"
	"ldb/internal/ps"
)

// registerOps installs the debugging types and operators the dialect
// adds to PostScript (§2, §5): abstract memory and location operators,
// the lazy anchor-symbol operators, frame access, and formatting
// helpers used by the printer procedures.
func (d *Debugger) registerOps() {
	in := d.In

	locMaker := func(name string, space amem.Space) {
		in.Register(name, func(in *ps.Interp) (err error) {
			off, err := in.PopInt(name)
			if err != nil {
				return err
			}
			in.Push(LocObj(amem.Abs(space, off)))
			return nil
		})
	}
	locMaker("DLoc", amem.Data)
	locMaker("CLoc", amem.Code)
	locMaker("RLoc", amem.Reg)
	locMaker("FLoc", amem.Float)
	locMaker("XLoc", amem.Extra)

	in.Register("ImmLoc", func(in *ps.Interp) error {
		v, err := in.PopInt("ImmLoc")
		if err != nil {
			return err
		}
		in.Push(LocObj(amem.Imm(uint64(v))))
		return nil
	})

	in.Register("Shifted", func(in *ps.Interp) error {
		n, err := in.PopInt("Shifted")
		if err != nil {
			return err
		}
		loc, err := popLoc(in, "Shifted")
		if err != nil {
			return err
		}
		in.Push(LocObj(loc.Shifted(n)))
		return nil
	})

	in.Register("LocOffset", func(in *ps.Interp) error {
		loc, err := popLoc(in, "LocOffset")
		if err != nil {
			return err
		}
		if loc.Mode == amem.Immediate {
			in.Push(ps.Int(int64(loc.Imm)))
		} else {
			in.Push(ps.Int(loc.Offset))
		}
		return nil
	})

	fetchInt := func(name string, signed bool) {
		in.Register(name, func(in *ps.Interp) error {
			size, err := in.PopInt(name)
			if err != nil {
				return err
			}
			loc, err := popLoc(in, name)
			if err != nil {
				return err
			}
			mem, err := popMem(in, name)
			if err != nil {
				return err
			}
			v, err := mem.FetchInt(loc, int(size))
			if err != nil {
				return psErr("invalidaccess", err)
			}
			if signed {
				in.Push(ps.Int(amem.SignExtend(v, int(size))))
			} else {
				in.Push(ps.Int(int64(v)))
			}
			return nil
		})
	}
	fetchInt("FetchInt", false)
	fetchInt("FetchSigned", true)

	in.Register("FetchFloat", func(in *ps.Interp) error {
		size, err := in.PopInt("FetchFloat")
		if err != nil {
			return err
		}
		loc, err := popLoc(in, "FetchFloat")
		if err != nil {
			return err
		}
		mem, err := popMem(in, "FetchFloat")
		if err != nil {
			return err
		}
		v, err := mem.FetchFloat(loc, int(size))
		if err != nil {
			return psErr("invalidaccess", err)
		}
		in.Push(ps.Real(v))
		return nil
	})

	in.Register("StoreInt", func(in *ps.Interp) error {
		val, err := in.PopInt("StoreInt")
		if err != nil {
			return err
		}
		size, err := in.PopInt("StoreInt")
		if err != nil {
			return err
		}
		loc, err := popLoc(in, "StoreInt")
		if err != nil {
			return err
		}
		mem, err := popMem(in, "StoreInt")
		if err != nil {
			return err
		}
		if err := mem.StoreInt(loc, int(size), uint64(val)); err != nil {
			return psErr("invalidaccess", err)
		}
		return nil
	})

	in.Register("StoreFloat", func(in *ps.Interp) error {
		v, err := in.PopNum("StoreFloat")
		if err != nil {
			return err
		}
		size, err := in.PopInt("StoreFloat")
		if err != nil {
			return err
		}
		loc, err := popLoc(in, "StoreFloat")
		if err != nil {
			return err
		}
		mem, err := popMem(in, "StoreFloat")
		if err != nil {
			return err
		}
		if err := mem.StoreFloat(loc, int(size), v); err != nil {
			return psErr("invalidaccess", err)
		}
		return nil
	})

	// LazyData fetches a relocated address from the anchor table in the
	// target address space (§2). It needs a connected, stopped target
	// (§7 discusses exactly this).
	lazy := func(name string, space amem.Space) {
		in.Register(name, func(in *ps.Interp) error {
			idx, err := in.PopInt(name)
			if err != nil {
				return err
			}
			anchor, err := in.PopName(name)
			if err != nil {
				return err
			}
			t := d.cur
			if t == nil || t.Client == nil || t.Table == nil {
				return &ps.Error{Name: "notarget", Cmd: name}
			}
			base, err := t.Table.AnchorAddr(anchor)
			if err != nil {
				return &ps.Error{Name: "undefined", Cmd: name + ": anchor " + anchor}
			}
			t.LazyFetches++
			v, err := t.Client.FetchInt(amem.Data, base+4*uint32(idx), 4)
			if err != nil {
				return psErr("invalidaccess", err)
			}
			in.Push(LocObj(amem.Abs(space, int64(v))))
			return nil
		})
	}
	lazy("LazyData", amem.Data)
	lazy("LazyCode", amem.Code)

	// GlobalData/GlobalCode resolve external symbols through the
	// nm-derived table in the loader table (§3, §7).
	global := func(name string, space amem.Space) {
		in.Register(name, func(in *ps.Interp) error {
			label, err := in.PopName(name)
			if err != nil {
				return err
			}
			t := d.cur
			if t == nil || t.Table == nil {
				return &ps.Error{Name: "notarget", Cmd: name}
			}
			addr, err := t.Table.GlobalAddr(label)
			if err != nil {
				return &ps.Error{Name: "undefined", Cmd: name + ": " + label}
			}
			in.Push(LocObj(amem.Abs(space, int64(addr))))
			return nil
		})
	}
	global("GlobalData", amem.Data)
	global("GlobalCode", amem.Code)

	// Reg and XReg read registers of the current frame; the
	// machine-dependent per-architecture PostScript uses them to
	// address local variables (§4.3).
	regRead := func(name string, space amem.Space) {
		in.Register(name, func(in *ps.Interp) error {
			n, err := in.PopInt(name)
			if err != nil {
				return err
			}
			f := d.CurrentFrame()
			if f == nil {
				return &ps.Error{Name: "notarget", Cmd: name}
			}
			v, err := f.Mem.FetchInt(amem.Abs(space, n), 4)
			if err != nil {
				return psErr("invalidaccess", err)
			}
			in.Push(ps.Int(int64(v)))
			return nil
		})
	}
	regRead("Reg", amem.Reg)
	regRead("XReg", amem.Extra)

	in.Register("CurrentMem", func(in *ps.Interp) error {
		f := d.CurrentFrame()
		if f == nil {
			return &ps.Error{Name: "notarget", Cmd: "CurrentMem"}
		}
		in.Push(MemObj(f.Mem))
		return nil
	})

	in.Register("ProcName", func(in *ps.Interp) error {
		addr, err := in.PopInt("ProcName")
		if err != nil {
			return err
		}
		t := d.cur
		if t == nil || t.Table == nil {
			in.Push(ps.Str(fmtHex(uint64(addr))))
			return nil
		}
		if p, ok := t.Table.ProcContaining(uint32(addr)); ok && p.Addr == uint32(addr) {
			in.Push(ps.Str(p.Name))
		} else {
			in.Push(ps.Str(fmtHex(uint64(addr))))
		}
		return nil
	})

	in.Register("HexStr", func(in *ps.Interp) error {
		v, err := in.PopInt("HexStr")
		if err != nil {
			return err
		}
		in.Push(ps.Str(fmtHex(uint64(uint32(v)))))
		return nil
	})

	in.Register("CharStr", func(in *ps.Interp) error {
		v, err := in.PopInt("CharStr")
		if err != nil {
			return err
		}
		if v >= 32 && v < 127 {
			in.Push(ps.Str(fmt.Sprintf("'%c'", rune(v))))
		} else {
			in.Push(ps.Str(fmt.Sprintf("'\\%03o'", v&0xff)))
		}
		return nil
	})

	// GetMemo realizes deferred dictionary values (quoted strings) on
	// first access and replaces them (§5: procedures interpreted at
	// most once are replaced with their results).
	in.Register("GetMemo", func(in *ps.Interp) error {
		key, err := in.Pop()
		if err != nil {
			return err
		}
		dict, err := in.PopDict("GetMemo")
		if err != nil {
			return err
		}
		v, ok := dict.Get(key)
		if !ok {
			return &ps.Error{Name: "undefined", Cmd: "GetMemo: " + ps.Cvs(key)}
		}
		if v.Kind == ps.KString && looksDeferred(v.S) {
			before := len(in.Stack)
			if err := in.RunStringNamed(v.S, "<deferred>"); err != nil {
				return err
			}
			if len(in.Stack) == before+1 {
				nv, _ := in.Pop()
				_ = dict.Put(key, nv)
				in.Push(nv)
				return nil
			}
			return &ps.Error{Name: "rangecheck", Cmd: "GetMemo"}
		}
		in.Push(v)
		return nil
	})
}

// looksDeferred reports whether a string value is quoted PostScript
// rather than plain data (deferred bodies start with a bracket).
func looksDeferred(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r':
			continue
		case '[', '<', '{':
			return true
		default:
			return false
		}
	}
	return false
}
