package core

import (
	"strings"
	"testing"

	"ldb/internal/ps"
)

const callC = `
int g = 5;
int square(int x) { return x * x; }
int add3(int a, int b, int c) { return a + b + c; }
double halfd(int n) { return n / 2.0; }
double fparam(double x) { return x; }
void poke() { g = g + 1; }
int main() {
	int s;
	s = square(3);
	printf("%d\n", s);
	return 0;
}
`

// TestCallProcedureAllTargets: §7.1 lists "expressions that include
// procedure calls" as future work; this extension implements them. A
// stopped target is made to run one of its own procedures on a scratch
// stack and is restored afterward, on every architecture.
func TestCallProcedureAllTargets(t *testing.T) {
	for _, a := range allArches {
		var out strings.Builder
		d, _ := New(&out)
		tgt := launch(t, d, a, "call.c", callC)
		if _, err := tgt.BreakProc("main"); err != nil {
			t.Fatal(err)
		}
		if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
			t.Fatalf("%s: %v %v", a, ev, err)
		}
		if v, err := tgt.CallInt("square", 7); err != nil || v != 49 {
			t.Errorf("%s: square(7) = %d, %v", a, v, err)
		}
		if v, err := tgt.CallInt("add3", 10, -20, 3); err != nil || v != -7 {
			t.Errorf("%s: add3 = %d, %v", a, v, err)
		}
		// A double-returning procedure comes back as a real.
		if o, err := tgt.CallProc("halfd", 9); err != nil || o.Kind != ps.KReal || o.R != 4.5 {
			t.Errorf("%s: halfd(9) = %v, %v", a, o, err)
		}
		// A void procedure returns null but its side effect lands.
		if o, err := tgt.CallProc("poke"); err != nil || o.Kind != ps.KNull {
			t.Errorf("%s: poke = %v, %v", a, o, err)
		}
		if v, err := tgt.FetchScalar("g"); err != nil || v != 6 {
			t.Errorf("%s: g after poke = %d, %v", a, v, err)
		}
		// Nested target calls work: square calls back into the target's
		// own multiply path.
		if v, err := tgt.CallInt("square", -11); err != nil || v != 121 {
			t.Errorf("%s: square(-11) = %d, %v", a, v, err)
		}
		// The interrupted session resumes exactly where it was: main
		// still computes and prints square(3).
		if ev, err := tgt.Continue(); err != nil || !ev.Exited {
			t.Fatalf("%s: %v %v", a, ev, err)
		}
		if got := tgt.Stdout.String(); got != "9\n" {
			t.Errorf("%s: program output = %q after calls", a, got)
		}
	}
}

func TestCallProcedureErrors(t *testing.T) {
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "sparc", "call.c", callC)
	if _, err := tgt.BreakProc("main"); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	// Wrong arity.
	if _, err := tgt.CallInt("square"); err == nil || !strings.Contains(err.Error(), "1 argument") {
		t.Errorf("arity: %v", err)
	}
	if _, err := tgt.CallInt("add3", 1, 2); err == nil {
		t.Error("add3 with 2 args accepted")
	}
	// Unknown procedure.
	if _, err := tgt.CallInt("nosuch"); err == nil {
		t.Error("unknown procedure accepted")
	}
	// Floating-point parameters are rejected up front.
	if _, err := tgt.CallProc("fparam", 1); err == nil || !strings.Contains(err.Error(), "floating") {
		t.Errorf("fparam: %v", err)
	}
	// A double result is not an int for CallInt.
	if _, err := tgt.CallInt("halfd", 4); err == nil {
		t.Error("CallInt accepted a real result")
	}
}

// TestCallProcedureHitsBreakpoint: if the called procedure stops at a
// user breakpoint the call is abandoned and the session is restored.
func TestCallProcedureHitsBreakpoint(t *testing.T) {
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "vax", "call.c", callC)
	if _, err := tgt.BreakProc("main"); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	if _, err := tgt.BreakProc("square"); err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.CallInt("square", 5); err == nil || !strings.Contains(err.Error(), "instead of returning") {
		t.Fatalf("call through a breakpoint: %v", err)
	}
	// The session survives: remove the breakpoint, call again, resume.
	if err := tgt.Bpts.RemoveAll(); err != nil {
		t.Fatal(err)
	}
	if v, err := tgt.CallInt("square", 5); err != nil || v != 25 {
		t.Fatalf("square after recovery = %d, %v", v, err)
	}
	if ev, err := tgt.Continue(); err != nil || !ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	if got := tgt.Stdout.String(); got != "9\n" {
		t.Errorf("output = %q", got)
	}
}

// TestCallInExpression: the full §7.1 loop — an expression containing a
// procedure call travels to the expression server (Fig. 3), comes back
// as PostScript invoking TargetCall, and the call runs in the target.
func TestCallInExpression(t *testing.T) {
	for _, a := range []string{"mips", "sparc", "m68k", "vax"} {
		var out strings.Builder
		d, _ := New(&out)
		tgt := launch(t, d, a, "call.c", callC)
		if _, err := tgt.BreakProc("main"); err != nil {
			t.Fatal(err)
		}
		if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
			t.Fatalf("%s: %v %v", a, ev, err)
		}
		if v, err := tgt.EvalInt("square(6) + 1"); err != nil || v != 37 {
			t.Errorf("%s: square(6)+1 = %d, %v", a, v, err)
		}
		// Arguments are themselves expressions evaluated in the frame:
		// g is the target's global (5).
		if v, err := tgt.EvalInt("add3(g, g * 2, 1)"); err != nil || v != 16 {
			t.Errorf("%s: add3(g,2g,1) = %d, %v", a, v, err)
		}
		// Nested calls.
		if v, err := tgt.EvalInt("square(square(2))"); err != nil || v != 16 {
			t.Errorf("%s: square(square(2)) = %d, %v", a, v, err)
		}
		// A float-returning call participates in arithmetic.
		if v, err := tgt.EvalFloat("halfd(7) * 2.0"); err != nil || v != 7 {
			t.Errorf("%s: halfd(7)*2 = %g, %v", a, v, err)
		}
		// Assignment from a call result.
		if _, err := tgt.Eval("g = square(4)"); err != nil {
			t.Errorf("%s: assign: %v", a, err)
		}
		if v, err := tgt.FetchScalar("g"); err != nil || v != 16 {
			t.Errorf("%s: g = %d, %v", a, v, err)
		}
		// Errors surface as expression failures, not crashes.
		if _, err := tgt.EvalInt("square(1, 2)"); err == nil {
			t.Errorf("%s: wrong arity accepted", a)
		}
		// And the session still resumes cleanly.
		if ev, err := tgt.Continue(); err != nil || !ev.Exited {
			t.Fatalf("%s: %v %v", a, ev, err)
		}
	}
}

// TestCallProcedureDifferential: target-call results match Go's int32
// semantics across a spread of inputs, including overflow wraparound,
// on a big- and a little-endian target.
func TestCallProcedureDifferential(t *testing.T) {
	src := `
int square(int x) { return x * x; }
int mix(int a, int b) { return a * 31 + (b ^ a) - (b >> 3); }
int main() { return 0; }
`
	inputs := []int64{0, 1, -1, 7, -13, 1000, -100000, 46341, 2147483647, -2147483648}
	for _, a := range []string{"mipsbe", "vax"} {
		var out strings.Builder
		d, _ := New(&out)
		tgt := launch(t, d, a, "diff.c", src)
		if _, err := tgt.BreakProc("main"); err != nil {
			t.Fatal(err)
		}
		if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
			t.Fatalf("%s: %v %v", a, ev, err)
		}
		for _, x := range inputs {
			want := int64(int32(x) * int32(x))
			if v, err := tgt.CallInt("square", x); err != nil || v != want {
				t.Errorf("%s: square(%d) = %d, want %d (%v)", a, x, v, want, err)
			}
		}
		for i, x := range inputs {
			y := inputs[(i+3)%len(inputs)]
			want := int64(int32(x)*31 + (int32(y) ^ int32(x)) - (int32(y) >> 3))
			if v, err := tgt.CallInt("mix", x, y); err != nil || v != want {
				t.Errorf("%s: mix(%d,%d) = %d, want %d (%v)", a, x, y, v, want, err)
			}
		}
	}
}
