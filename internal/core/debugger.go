package core

import (
	"fmt"
	"io"
	"sort"

	"ldb/internal/arch"
	"ldb/internal/frame"
	"ldb/internal/nub"
	"ldb/internal/ps"
	"ldb/internal/symtab"
)

// Debugger is an instance of ldb. It embeds one PostScript interpreter
// (one interpreter supports code in symbol-table entries and expression
// evaluation, §3) and can hold connections to several targets on
// different architectures simultaneously.
type Debugger struct {
	In  *ps.Interp
	Out io.Writer

	Targets   []*Target
	cur       *Target
	archDicts map[string]*ps.Dict
	baseDepth int
	exprErr   string
}

// New creates a debugger: it builds the interpreter, registers the
// debugging operators, reads the initial PostScript (the shared
// prelude), and prepares one machine-dependent dictionary per
// registered architecture.
func New(out io.Writer) (*Debugger, error) {
	d := &Debugger{In: ps.New(), Out: out, archDicts: make(map[string]*ps.Dict)}
	d.In.Stdout = out
	d.registerOps()
	d.registerExprOps()
	if err := d.In.RunStringNamed(PreludePS, "<prelude>"); err != nil {
		return nil, fmt.Errorf("core: reading initial PostScript: %w", err)
	}
	// Sorted order: dictionary construction runs PostScript with shared
	// interpreter state, and a startup failure must name the same arch
	// on every run.
	archNames := make([]string, 0, len(archPS))
	for name := range archPS {
		archNames = append(archNames, name)
	}
	sort.Strings(archNames)
	for _, name := range archNames {
		src := archPS[name]
		o, err := d.In.Eval(src)
		if err != nil || o.Kind != ps.KDict {
			return nil, fmt.Errorf("core: bad arch dictionary for %s: %v", name, err)
		}
		a, ok := arch.Lookup(name)
		if ok {
			names := make([]ps.Object, a.NumRegs())
			for i := range names {
				names[i] = ps.Str(a.RegName(i))
			}
			o.D.PutName("RegNames", ps.ArrayObj(names...))
			// Describe the nub's machine-dependent context record in
			// PostScript, so PostScript programs can manipulate it (§7:
			// "we wrote PostScript code that reads the top-level
			// dictionary for the nub and constructs a Modula-3
			// description of one of the nub's machine-dependent data
			// structures").
			l := a.Context()
			ctx := ps.NewDict(8)
			ctx.PutName("size", ps.Int(int64(l.Size)))
			ctx.PutName("pc", ps.Int(int64(l.PCOff)))
			ctx.PutName("flag", ps.Int(int64(l.FlagOff)))
			regOffs := make([]ps.Object, len(l.RegOffs))
			for i, off := range l.RegOffs {
				regOffs[i] = ps.Int(int64(off))
			}
			ctx.PutName("regs", ps.ArrayObj(regOffs...))
			fregOffs := make([]ps.Object, len(l.FRegOffs))
			for i, off := range l.FRegOffs {
				fregOffs[i] = ps.Int(int64(off))
			}
			ctx.PutName("fregs", ps.ArrayObj(fregOffs...))
			ctx.PutName("fregsize", ps.Int(int64(l.FRegSize)))
			ctx.PutName("floatwordswap", ps.Boolean(l.FloatWordSwap))
			o.D.PutName("Context", ps.DictObj(ctx))
		}
		d.archDicts[name] = o.D
	}
	d.baseDepth = len(d.In.DStack)
	return d, nil
}

// Current returns the current target, if any.
func (d *Debugger) Current() *Target { return d.cur }

// Switch makes t the current target, rebinding the machine-dependent
// PostScript names by placing t's architecture dictionary (and t's
// symbol environment) on the dictionary stack (§5).
func (d *Debugger) Switch(t *Target) {
	d.cur = t
	d.In.DStack = d.In.DStack[:d.baseDepth]
	if t == nil {
		return
	}
	if t.Table != nil && t.Table.Env != nil {
		d.In.DStack = append(d.In.DStack, t.Table.Env)
	}
	if ad, ok := d.archDicts[t.Arch.Name()]; ok {
		d.In.DStack = append(d.In.DStack, ad)
	}
}

// CurrentFrame returns the selected frame of the current target.
func (d *Debugger) CurrentFrame() *frame.Frame {
	t := d.cur
	if t == nil || t.CurFrame >= len(t.Frames) {
		return nil
	}
	return t.Frames[t.CurFrame]
}

// Attach connects to a nub over conn (which may be a network
// connection to another machine) and loads the program's loader-table
// PostScript. The nub tells us the architecture; the symbol table must
// agree (§2: ldb uses the recorded architecture to find its
// machine-dependent code and data).
func (d *Debugger) Attach(name string, conn io.ReadWriter, loaderPS string) (*Target, error) {
	client, err := nub.Connect(conn)
	if err != nil {
		return nil, err
	}
	return d.attach(name, client, loaderPS)
}

// AttachClient wires an already-connected nub client.
func (d *Debugger) AttachClient(name string, client *nub.Client, loaderPS string) (*Target, error) {
	return d.attach(name, client, loaderPS)
}

func (d *Debugger) attach(name string, client *nub.Client, loaderPS string) (*Target, error) {
	a, ok := arch.Lookup(client.ArchName)
	if !ok {
		return nil, fmt.Errorf("core: target runs unknown architecture %q", client.ArchName)
	}
	table, err := symtab.Load(d.In, loaderPS)
	if err != nil {
		return nil, err
	}
	if err := table.Validate(); err != nil {
		return nil, err
	}
	ta, err := table.Architecture()
	if err != nil {
		return nil, err
	}
	if ta != a.Name() {
		return nil, fmt.Errorf("core: symbol table is for %s but the target runs %s", ta, a.Name())
	}
	return d.adoptTarget(name, a, client, table)
}

// adoptTarget registers a new target (with or without a symbol table)
// and syncs it to the nub's latched event.
func (d *Debugger) adoptTarget(name string, a arch.Arch, client *nub.Client, table *symtab.Table) (*Target, error) {
	t := newTarget(d, name, a, client, table)
	d.Targets = append(d.Targets, t)
	d.Switch(t)
	if client.Last != nil {
		if client.Last.Exited {
			t.Exited, t.ExitStatus = true, client.Last.Status
		} else if err := t.Refresh(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AttachMachineLevel connects to a nub with no symbol table at all: the
// degraded mode. The target supports registers, memory, address
// breakpoints, and single-instruction stepping — everything the nub
// protocol provides without the table — and every source-level
// operation reports that it needs symbols.
func (d *Debugger) AttachMachineLevel(name string, client *nub.Client) (*Target, error) {
	a, ok := arch.Lookup(client.ArchName)
	if !ok {
		return nil, fmt.Errorf("core: target runs unknown architecture %q", client.ArchName)
	}
	return d.adoptTarget(name, a, client, nil)
}

// AttachDegraded attaches with the loader table when it is usable and
// falls back to machine-level debugging when it is not: a corrupt,
// missing, or mismatched symbol table costs source-level debugging, not
// the session. The warning (empty on a clean attach) is the one-line
// explanation the caller should show.
func (d *Debugger) AttachDegraded(name string, client *nub.Client, loaderPS string) (t *Target, warning string, err error) {
	if loaderPS != "" {
		t, err = d.attach(name, client, loaderPS)
		if err == nil {
			return t, "", nil
		}
		warning = fmt.Sprintf("symbol table unusable (%v); entering machine-level mode", err)
	} else {
		warning = "no symbol table; entering machine-level mode"
	}
	t, merr := d.AttachMachineLevel(name, client)
	if merr != nil {
		if err != nil {
			return nil, "", err
		}
		return nil, "", merr
	}
	return t, warning, nil
}

// evalWhere executes a where procedure (or accepts an already-realized
// location), yielding the location.
func (d *Debugger) evalWhere(v ps.Object) (loc ps.Object, err error) {
	if v.Kind == ps.KExt {
		return v, nil
	}
	before := len(d.In.Stack)
	if err := d.In.ExecProc(v); err != nil {
		return ps.Object{}, err
	}
	if len(d.In.Stack) != before+1 {
		d.In.Stack = d.In.Stack[:before]
		return ps.Object{}, fmt.Errorf("core: where procedure left no location")
	}
	o, _ := d.In.Pop()
	if o.Kind != ps.KExt || o.X == nil || o.X.ExtType() != "locationtype" {
		return ps.Object{}, fmt.Errorf("core: where procedure yielded %s", o.TypeName())
	}
	return o, nil
}

// frameIndependent reports whether a where procedure's result can be
// memoized (it contains no frame-relative addressing).
func frameIndependent(v ps.Object) bool {
	if v.Kind != ps.KArray {
		return false
	}
	for _, e := range v.A.E {
		if e.Kind == ps.KName && e.S == "FrameOffset" {
			return false
		}
		if e.Kind == ps.KArray && !frameIndependent(e) {
			return false
		}
	}
	return true
}
