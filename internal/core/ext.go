// Package core is ldb proper: the debugger that ties together the
// embedded PostScript interpreter, the symbol tables, the nub
// connection, abstract memories, stack frames, and breakpoints. It can
// connect to multiple targets simultaneously — target-specific state
// lives in target objects, never in globals (§7) — and switching
// architectures rebinds the machine-dependent PostScript names by
// placing a per-architecture dictionary on the dictionary stack (§5).
package core

import (
	"fmt"

	"ldb/internal/amem"
	"ldb/internal/ps"
)

// LocExt wraps an abstract-memory location as a PostScript extension
// object.
type LocExt struct {
	Loc amem.Location
}

// ExtType implements ps.Ext.
func (l *LocExt) ExtType() string { return "locationtype" }

func (l *LocExt) String() string { return l.Loc.String() }

// MemExt wraps an abstract memory as a PostScript extension object.
type MemExt struct {
	Mem amem.Memory
}

// ExtType implements ps.Ext.
func (m *MemExt) ExtType() string { return "memorytype" }

// LocObj wraps a location.
func LocObj(loc amem.Location) ps.Object { return ps.ExtObj(&LocExt{Loc: loc}) }

// MemObj wraps a memory.
func MemObj(m amem.Memory) ps.Object { return ps.ExtObj(&MemExt{Mem: m}) }

// popLoc pops a location extension object.
func popLoc(in *ps.Interp, cmd string) (amem.Location, error) {
	x, err := in.PopExt("locationtype", cmd)
	if err != nil {
		return amem.Location{}, err
	}
	return x.(*LocExt).Loc, nil
}

// popMem pops a memory extension object.
func popMem(in *ps.Interp, cmd string) (amem.Memory, error) {
	x, err := in.PopExt("memorytype", cmd)
	if err != nil {
		return nil, err
	}
	return x.(*MemExt).Mem, nil
}

func psErr(name string, err error) error {
	return &ps.Error{Name: name, Cmd: err.Error()}
}

func fmtHex(v uint64) string { return fmt.Sprintf("0x%x", v) }
