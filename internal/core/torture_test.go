package core

import (
	"strings"
	"testing"

	"ldb/internal/nub"
)

// TestEveryStoppingPointHitCounts plants a breakpoint at every one of
// fib's 14 stopping points and counts hits while the program runs to
// completion. The counts are fully determined by fib(10)'s control
// flow, so this pins stop placement, address resolution through the
// anchor table, trap planting, and breakpoint resume on every target.
func TestEveryStoppingPointHitCounts(t *testing.T) {
	// fib(10): the i-loop runs i=2..9 (8 bodies, 9 condition checks);
	// the j-loop runs j=0..9 (10 bodies, 11 condition checks).
	want := map[int]int{
		0:  1,  // entry
		1:  1,  // if (n > 20)
		2:  0,  // n = 20 — never executed
		3:  1,  // a[0] = a[1] = 1
		4:  1,  // i = 2
		5:  9,  // i < n
		6:  8,  // i++
		7:  8,  // a[i] = ...
		8:  1,  // j = 0
		9:  11, // j < n
		10: 10, // j++
		11: 10, // printf("%d ", a[j])
		12: 1,  // printf("\n")
		13: 1,  // exit
	}
	for _, a := range allArches {
		t.Run(a, func(t *testing.T) {
			var out strings.Builder
			d, _ := New(&out)
			tgt := launch(t, d, a, "fib.c", fibC)
			stops, _, err := tgt.ProcStops("fib")
			if err != nil {
				t.Fatal(err)
			}
			if len(stops) != 14 {
				t.Fatalf("stops = %d", len(stops))
			}
			addrToIdx := map[uint32]int{}
			for i := range stops {
				addr, err := tgt.BreakStop("fib", stops[i].Index)
				if err != nil {
					t.Fatalf("stop %d: %v", stops[i].Index, err)
				}
				addrToIdx[addr] = stops[i].Index
			}
			got := map[int]int{}
			ev, err := tgt.RunEvents(func(t *Target, ev *nub.Event) (bool, error) {
				got[addrToIdx[ev.PC]]++
				return false, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if !ev.Exited || ev.Status != 0 {
				t.Fatalf("final: %v", ev)
			}
			for idx, n := range want {
				if got[idx] != n {
					t.Errorf("stop %d hit %d times, want %d", idx, got[idx], n)
				}
			}
		})
	}
}

// TestDeepRecursionWalk stops 25 frames deep and walks the whole stack
// on every target, checking each frame's argument.
func TestDeepRecursionWalk(t *testing.T) {
	src := `
int down(int k) {
	if (k == 0) return 0;
	return down(k - 1) + 1;
}
int main() { return down(24); }
`
	for _, a := range allArches {
		t.Run(a, func(t *testing.T) {
			var out strings.Builder
			d, _ := New(&out)
			tgt := launch(t, d, a, "deep.c", src)
			// Break at the base case: condition stop with k == 0. Use a
			// conditional breakpoint at the if.
			if _, err := tgt.BreakStopIf("down", 1, "k == 0"); err != nil {
				t.Fatal(err)
			}
			if ev, err := tgt.ContinueConditional(); err != nil || ev.Exited {
				t.Fatalf("%v %v", ev, err)
			}
			// 25 down frames + main + _start.
			bt, err := tgt.Backtrace(40)
			if err != nil {
				t.Fatal(err)
			}
			downs := 0
			for _, name := range bt {
				if name == "_down" {
					downs++
				}
			}
			if downs != 25 {
				t.Fatalf("stack shows %d down frames (%v...)", downs, bt[:3])
			}
			// k increases by one per frame walking down.
			for i := 0; i < 25; i += 6 {
				if err := tgt.SelectFrame(i); err != nil {
					t.Fatal(err)
				}
				if v, err := tgt.FetchScalar("k"); err != nil || v != int64(i) {
					t.Fatalf("frame %d: k = %d, %v", i, v, err)
				}
			}
			// Evaluate through the expression server in a middle frame.
			if err := tgt.SelectFrame(10); err != nil {
				t.Fatal(err)
			}
			if v, err := tgt.EvalInt("k * 2"); err != nil || v != 20 {
				t.Fatalf("expr in frame 10: %d, %v", v, err)
			}
		})
	}
}

// TestEvalCompoundAndComma exercises the new C operators through the
// expression server.
func TestEvalCompoundAndComma(t *testing.T) {
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "m68k", "fib.c", fibC)
	if _, err := tgt.BreakStop("fib", 7); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	if v, err := tgt.EvalInt("n += 3"); err != nil || v != 13 {
		t.Fatalf("n += 3: %d, %v", v, err)
	}
	if v, err := tgt.EvalInt("n -= 1, n * 10"); err != nil || v != 120 {
		t.Fatalf("comma: %d, %v", v, err)
	}
	if v, err := tgt.FetchScalar("n"); err != nil || v != 12 {
		t.Fatalf("n after: %d, %v", v, err)
	}
}
