package core

import (
	"net"
	"strings"
	"testing"

	"ldb/internal/driver"
	"ldb/internal/machine"
	"ldb/internal/nub"
	"ldb/internal/ps"
)

// TestAttachOverConnection exercises the general Attach path: the
// debugger is handed a connection (here an in-memory pipe standing in
// for the paper's network connection to another machine) rather than a
// ready-made client, learns the architecture from the nub, and runs a
// normal session. The session ends with Kill.
func TestAttachOverConnection(t *testing.T) {
	prog, err := driver.Build([]driver.Source{{Name: "fib.c", Text: fibC}}, driver.Options{Arch: "sparc", Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	p := machine.New(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	n := nub.New(p)
	ours, theirs := net.Pipe()
	go n.Serve(theirs)

	var out strings.Builder
	d, _ := New(&out)
	tgt, err := d.Attach("over-pipe", ours, prog.LoaderPS)
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Arch.Name() != "sparc" {
		t.Fatalf("architecture from nub: %s", tgt.Arch.Name())
	}
	if _, err := tgt.BreakStop("fib", 7); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	if v, err := tgt.FetchScalar("n"); err != nil || v != 10 {
		t.Fatalf("n = %d, %v", v, err)
	}
	// Kill ends the target; further resumption is refused.
	if err := tgt.Kill(); err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.Continue(); err == nil || !strings.Contains(err.Error(), "exited") {
		t.Fatalf("continue after kill: %v", err)
	}
}

// TestAttachRefusesUnknownLoader: Attach still validates the loader
// table when connecting over a raw connection.
func TestAttachRefusesUnknownLoader(t *testing.T) {
	prog, err := driver.Build([]driver.Source{{Name: "fib.c", Text: fibC}}, driver.Options{Arch: "vax", Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	p := machine.New(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	n := nub.New(p)
	ours, theirs := net.Pipe()
	go n.Serve(theirs)
	var out strings.Builder
	d, _ := New(&out)
	if _, err := d.Attach("bad", ours, "42"); err == nil {
		t.Fatal("attached with a non-table loader")
	}
}

// TestTraceExprTraffic observes the two pipes of Fig. 3: the expression
// goes down one, PostScript comes back on the other, ending with the
// result marker.
func TestTraceExprTraffic(t *testing.T) {
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "mips", "fib.c", fibC)
	if _, err := tgt.BreakStop("fib", 7); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	var down, up []string
	uninstall := tgt.TraceExprTraffic(func(dir, line string) {
		if strings.HasPrefix(dir, "ldb →") {
			down = append(down, line)
		} else {
			up = append(up, line)
		}
	})
	defer uninstall()
	if v, err := tgt.EvalInt("n + i"); err != nil || v != 12 {
		t.Fatalf("eval: %d, %v", v, err)
	}
	joinedDown := strings.Join(down, "")
	joinedUp := strings.Join(up, "")
	if !strings.Contains(joinedDown, "expr n + i") {
		t.Errorf("expression not seen on the request pipe: %q", joinedDown)
	}
	// The server asked about both identifiers and ldb replied with C
	// tokens including a location description.
	if !strings.Contains(joinedUp, "ExpressionServer.lookup") {
		t.Errorf("no lookups on the PS pipe: %q", joinedUp)
	}
	if !strings.Contains(joinedDown, "sym ") || !strings.Contains(joinedDown, "; int n") {
		t.Errorf("no symbol reply on the request pipe: %q", joinedDown)
	}
	if !strings.Contains(joinedUp, "ExpressionServer.result") {
		t.Errorf("no result marker: %q", joinedUp)
	}
}

// TestLocationObjectsInPS: location extension objects print with their
// space and offset (so pstack in a `ps` session is informative), and a
// fetch from an unmapped address surfaces as a PostScript
// invalidaccess error that stopped can catch.
func TestLocationObjectsInPS(t *testing.T) {
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "sparc", "fib.c", fibC)
	if _, err := tgt.BreakStop("fib", 7); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	in := d.In
	if err := in.RunString("16#40 DLoc"); err != nil {
		t.Fatal(err)
	}
	o, _ := in.Pop()
	if got := ps.Format(o); got != "-locationtype:d:64-" {
		t.Fatalf("location formats as %q", got)
	}
	// Unmapped fetch: the amem error crosses into PostScript as
	// /invalidaccess, catchable with stopped.
	if err := in.RunString("{ CurrentMem 16#0ffffff0 DLoc 4 FetchInt } stopped"); err != nil {
		t.Fatal(err)
	}
	caught, err := in.PopBool("test")
	if err != nil || !caught {
		t.Fatalf("fetch from unmapped address not caught: %v %v", caught, err)
	}
}
