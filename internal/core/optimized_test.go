package core

import (
	"strings"
	"testing"

	"ldb/internal/ps"
	"ldb/internal/symtab"
)

// TestStrengthReductionRecovery demonstrates §7.1's "PostScript invites
// further exploitation; it might help debug optimized code": if an
// optimizer performed strength reduction, replacing the use of i in
// a[i] with an induction pointer p, the compiler can emit PostScript
// that RECOVERS i from p. Here we inject such an entry by hand — its
// /where procedure computes (p - a) / 4 and yields the value as an
// immediate location — and ldb prints the recovered variable with the
// ordinary INT printer. ldb itself needed no change (the paper's
// point: "ldb's capabilities can be extended by changing only the
// PostScript symbol tables").
func TestStrengthReductionRecovery(t *testing.T) {
	src := `
int a[16];
int *p;
int main() {
	int k;
	p = a;
	for (k = 0; k < 9; k++) { a[k] = k; p = p + 1; }
	return *(p - 1);
}
`
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "sparc", "sr.c", src)
	stops, _, err := tgt.ProcStops("main")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.BreakStop("main", stops[len(stops)-2].Index); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	// Build the "recovered i" entry in the target's symbol environment:
	// its where fetches p and a's base, subtracts, divides by the
	// element size, and delivers the value as an immediate location.
	tgt.ensureCurrent()
	pEntry, err := tgt.Lookup("p")
	if err != nil {
		t.Fatal(err)
	}
	pLoc, err := tgt.WhereLoc(pEntry)
	if err != nil {
		t.Fatal(err)
	}
	aEntry, err := tgt.Lookup("a")
	if err != nil {
		t.Fatal(err)
	}
	aLoc, err := tgt.WhereLoc(aEntry)
	if err != nil {
		t.Fatal(err)
	}
	intType := pEntry.TypeDict() // reuse a type dict's shape
	_ = intType
	code := `
/i_recovered <<
  /name (i_recovered)
  /kind (variable)
  /type << /decl (int %s) /printer {INT} /size 4 >>
  /where { CurrentMem ` +
		ps.Format(ps.Int(pLoc.Offset)) + ` DLoc 4 FetchInt ` +
		ps.Format(ps.Int(aLoc.Offset)) + ` sub 4 idiv ImmLoc }
  /uplink null
>> def
`
	if err := d.In.RunString(code); err != nil {
		t.Fatal(err)
	}
	entryObj, ok := d.In.Lookup("i_recovered")
	if !ok || entryObj.Kind != ps.KDict {
		t.Fatal("synthetic entry not defined")
	}
	e := symtab.Entry{D: entryObj.D, T: tgt.Table}
	var buf strings.Builder
	d.In.Stdout = &buf
	if err := tgt.PrintEntry(e); err != nil {
		t.Fatal(err)
	}
	// After the loop, p has advanced 9 elements past a: recovered i = 9.
	if got := strings.TrimSpace(buf.String()); got != "9" {
		t.Fatalf("recovered i = %q, want 9", got)
	}
}

// TestLongDoubleDebugging prints an 80-bit extended variable on the
// 68020 — the third float size flowing through the whole stack: the
// compiler's 12-byte layout, the simulator's extended stores, the nub,
// the abstract memories, and the LDOUBLE printer's /fsize dispatch.
func TestLongDoubleDebugging(t *testing.T) {
	src := `
long double x;
double y;
int main() {
	x = 2.5;
	x = x * 3.0;
	y = 0.5;
	return 0;
}
`
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "m68k", "ld.c", src)
	stops, _, err := tgt.ProcStops("main")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.BreakStop("main", stops[len(stops)-2].Index); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	if got := printOf(t, d, tgt, "x"); got != "7.5" {
		t.Fatalf("print x = %q", got)
	}
	// The type dictionary carries the machine-dependent sizes.
	e, err := tgt.Lookup("x")
	if err != nil {
		t.Fatal(err)
	}
	td := e.TypeDict()
	if sz, _ := td.GetName("size"); sz.I != 12 {
		t.Fatalf("long double size = %d on m68k", sz.I)
	}
	if fs, _ := td.GetName("fsize"); fs.I != 10 {
		t.Fatalf("long double fsize = %d", fs.I)
	}
	if v, err := tgt.FetchFloatVar("x"); err != nil || v != 7.5 {
		t.Fatalf("FetchFloatVar = %g, %v", v, err)
	}
	// Assignment through the debugger round-trips the extended format.
	if err := tgt.AssignFloat("x", -1.25); err != nil {
		t.Fatal(err)
	}
	if got := printOf(t, d, tgt, "x"); got != "-1.25" {
		t.Fatalf("after assign: %q", got)
	}
}
