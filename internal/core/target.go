package core

import (
	"bytes"
	"errors"
	"fmt"

	"ldb/internal/amem"
	"ldb/internal/arch"
	"ldb/internal/bpt"
	"ldb/internal/frame"
	"ldb/internal/nub"
	"ldb/internal/ps"
	"ldb/internal/symtab"
)

// Target is one debugged process. Dependence on target state is
// surprisingly pervasive (§7) — even printing a function pointer needs
// the loader table — so everything target-specific lives here.
type Target struct {
	D      *Debugger
	Name   string
	Arch   arch.Arch
	Client *nub.Client
	Table  *symtab.Table
	Bpts   *bpt.Manager

	FInfo  *frame.Target
	Walker frame.Walker

	Frames   []*frame.Frame
	CurFrame int

	Exited     bool
	ExitStatus int

	// LazyFetches counts anchor-table fetches from the target address
	// space; thanks to memoization they happen at most once per entry
	// (§7).
	LazyFetches int

	procsByAddr map[uint32]string // proc entry PS-names by code address
	exprS       *exprSession
	exprScope   uint64 // pc+frame of the last Eval; a change flushes frame bindings
	exprTrace   func(dir, line string)
	conds       map[uint32]string // breakpoint conditions by address

	// Stdout, when set by the embedder, points at the target process's
	// collected output (the in-process "child" arrangement).
	Stdout *bytes.Buffer
}

// ErrNoSymbols reports a source-level operation attempted on a target
// attached in machine-level (degraded) mode, where no symbol table is
// available.
var ErrNoSymbols = errors.New("core: no symbol table (machine-level mode)")

func newTarget(d *Debugger, name string, a arch.Arch, client *nub.Client, table *symtab.Table) *Target {
	t := &Target{
		D: d, Name: name, Arch: a, Client: client, Table: table,
		Bpts: bpt.New(a, client),
	}
	// In machine-level mode there is no table: frames walk without a
	// runtime procedure table and procedures have no names.
	var rpt uint32
	if table != nil {
		rpt, _ = table.RPTAddr()
	}
	t.FInfo = &frame.Target{
		A: a, C: client, Ctx: client.CtxAddr, RPT: rpt,
		ProcName: func(pc uint32) string {
			if table == nil {
				return ""
			}
			if p, ok := table.ProcContaining(pc); ok {
				return p.Name
			}
			return ""
		},
	}
	t.Walker = frame.New(t.FInfo)
	return t
}

// Degraded reports whether the target was attached without a usable
// symbol table: machine-level debugging only.
func (t *Target) Degraded() bool { return t.Table == nil }

// Stopped reports whether the target is stopped at a signal.
func (t *Target) Stopped() bool {
	return !t.Exited && t.Client.Last != nil && !t.Client.Last.Exited
}

// Refresh rebuilds the frame list after a stop. In machine-level mode a
// failed walk (some architectures cannot walk without the symbol
// table's runtime procedure table) leaves the frame list empty rather
// than failing the stop: registers and memory are still inspectable.
func (t *Target) Refresh() error {
	t.Frames = nil
	t.CurFrame = 0
	top, err := t.Walker.Top()
	if err != nil {
		if t.Degraded() {
			return nil
		}
		return err
	}
	t.Frames = []*frame.Frame{top}
	return nil
}

// Frame returns frame i, walking the stack as needed.
func (t *Target) Frame(i int) (*frame.Frame, error) {
	for len(t.Frames) <= i {
		if len(t.Frames) == 0 {
			if err := t.Refresh(); err != nil {
				return nil, err
			}
			if len(t.Frames) == 0 {
				// A degraded-mode Refresh may legitimately produce no
				// frames; report that instead of retrying forever.
				return nil, fmt.Errorf("core: no stack frames (machine-level mode)")
			}
			continue
		}
		f, err := t.Frames[len(t.Frames)-1].Caller()
		if err != nil {
			return nil, err
		}
		t.Frames = append(t.Frames, f)
	}
	return t.Frames[i], nil
}

// SelectFrame makes frame i current for name resolution and printing.
func (t *Target) SelectFrame(i int) error {
	if _, err := t.Frame(i); err != nil {
		return err
	}
	t.CurFrame = i
	return nil
}

// Continue resumes the target. If it is stopped at one of our
// breakpoints, the overwritten no-op is interpreted out of line first:
// the saved pc is advanced past it (§3).
func (t *Target) Continue() (*nub.Event, error) {
	return t.resume(false)
}

// StepInst advances the target by exactly one instruction through the
// nub's machine-level step — the stepping that works with no symbol
// table at all, unlike the source-level Step which plants temporary
// breakpoints at stopping points.
func (t *Target) StepInst() (*nub.Event, error) {
	return t.resume(true)
}

func (t *Target) resume(step bool) (*nub.Event, error) {
	if t.Exited {
		return nil, fmt.Errorf("core: %s has exited", t.Name)
	}
	last := t.Client.Last
	if last != nil && !last.Exited && t.Bpts.IsPlanted(last.PC) {
		if t.Bpts.IsRaw(last.PC) {
			// A machine-level breakpoint overwrote a real instruction:
			// restore it, retire it with one machine step, replant.
			ev, done, err := t.stepOffRaw(last.PC)
			if err != nil {
				return nil, err
			}
			if done || step {
				return t.settle(ev)
			}
		} else {
			// A stopping-point no-op: interpret it out of line by
			// advancing the saved pc past it (§3).
			l := t.Arch.Context()
			newPC := t.Bpts.ResumePC(last.PC)
			if err := t.Client.StoreInt(amem.Data, t.Client.CtxAddr+uint32(l.PCOff), 4, uint64(newPC)); err != nil {
				return nil, err
			}
		}
	}
	var ev *nub.Event
	var err error
	if step {
		ev, err = t.Client.StepInst()
	} else {
		ev, err = t.Client.Continue()
	}
	if err != nil {
		// A continue lost to the wire may still have run the target.
		// When the client reconnected, its handshake replayed the nub's
		// latched event into Last: resync our view from that event —
		// verified live by walking the stack — and report it alongside
		// the error, so the debugger is looking at real state.
		if last := t.Client.Last; nub.IsConnLost(err) && last != nil && !last.Exited {
			if rerr := t.Refresh(); rerr == nil {
				return last, err
			}
		}
		return nil, err
	}
	return t.settle(ev)
}

// stepOffRaw moves the target off a raw (machine-level) breakpoint: the
// trap is unplanted, the original instruction retired with a single
// machine step, and the trap replanted. done reports that the step
// produced a terminal event — a fault or an exit — that the caller must
// surface instead of resuming further.
func (t *Target) stepOffRaw(addr uint32) (ev *nub.Event, done bool, err error) {
	if err := t.Bpts.Remove(addr); err != nil {
		return nil, false, err
	}
	ev, err = t.Client.StepInst()
	if err != nil {
		return nil, false, err
	}
	if ev.Exited {
		return ev, true, nil
	}
	if err := t.Bpts.PlantRaw(addr); err != nil {
		return nil, false, err
	}
	if ev.Sig != arch.SigTrap || ev.Code != arch.TrapStep {
		return ev, true, nil // the instruction itself faulted
	}
	return ev, false, nil
}

// settle records an event's consequences: exit bookkeeping, or a stack
// refresh at the new stop.
func (t *Target) settle(ev *nub.Event) (*nub.Event, error) {
	if ev.Exited {
		t.Exited, t.ExitStatus = true, ev.Status
		t.Frames = nil
		return ev, nil
	}
	if err := t.Refresh(); err != nil {
		return ev, err
	}
	return ev, nil
}

// ContinueToBreakpoint resumes repeatedly until a planted breakpoint
// (or exit or a real fault) is reached.
func (t *Target) ContinueToBreakpoint() (*nub.Event, error) {
	for {
		ev, err := t.Continue()
		if err != nil || ev.Exited {
			return ev, err
		}
		if t.Bpts.IsBreakpointSignal(ev) {
			return ev, nil
		}
		if ev.Sig != arch.SigTrap {
			return ev, nil // a real fault
		}
	}
}

// stopLoc realizes a stopping point's object-code location, replacing
// the where procedure with its result (interpreted at most once, §5).
func (t *Target) stopLoc(s *symtab.Stop) (uint32, error) {
	t.ensureCurrent()
	o, err := t.D.evalWhere(s.Where)
	if err != nil {
		return 0, err
	}
	if s.Elem != nil && frameIndependent(s.Where) {
		s.Elem.PutName("where", o)
	}
	loc := o.X.(*LocExt).Loc
	return uint32(loc.Offset), nil
}

// ensureCurrent switches the debugger to this target if needed (the
// lazy operators consult the current target).
func (t *Target) ensureCurrent() {
	if t.D.cur != t {
		t.D.Switch(t)
	}
}

// ProcStops returns a procedure's stopping points by source name.
func (t *Target) ProcStops(proc string) ([]symtab.Stop, string, error) {
	if t.Degraded() {
		return nil, "", ErrNoSymbols
	}
	_, entryName, ok := t.Table.ProcEntryByName(proc)
	if !ok {
		return nil, "", fmt.Errorf("core: no procedure %q", proc)
	}
	info, err := t.Table.ProcInfo(entryName)
	if err != nil {
		return nil, "", err
	}
	stops, err := t.Table.Loci(info)
	return stops, entryName, err
}

// BreakProc plants a breakpoint at a procedure's first stopping point
// (users specify source locations or procedure names, §3).
func (t *Target) BreakProc(proc string) (uint32, error) {
	stops, _, err := t.ProcStops(proc)
	if err != nil {
		return 0, err
	}
	if len(stops) == 0 {
		return 0, fmt.Errorf("core: %q has no stopping points", proc)
	}
	addr, err := t.stopLoc(&stops[0])
	if err != nil {
		return 0, err
	}
	return addr, t.Bpts.Plant(addr)
}

// BreakStop plants a breakpoint at a specific stopping point.
func (t *Target) BreakStop(proc string, index int) (uint32, error) {
	stops, _, err := t.ProcStops(proc)
	if err != nil {
		return 0, err
	}
	for i := range stops {
		if stops[i].Index == index {
			addr, err := t.stopLoc(&stops[i])
			if err != nil {
				return 0, err
			}
			return addr, t.Bpts.Plant(addr)
		}
	}
	return 0, fmt.Errorf("core: %s has no stopping point %d", proc, index)
}

// BreakLine plants breakpoints at every stopping point on the given
// source line (because of the C preprocessor, one source location may
// correspond to more than one stopping point, §2).
func (t *Target) BreakLine(file string, line int) ([]uint32, error) {
	if t.Degraded() {
		return nil, ErrNoSymbols
	}
	sm, ok := t.Table.Top.GetName("sourcemap")
	if !ok || sm.Kind != ps.KDict {
		return nil, fmt.Errorf("core: no sourcemap")
	}
	procs, ok := sm.D.GetName(file)
	if !ok || procs.Kind != ps.KArray {
		return nil, fmt.Errorf("core: no procedures for %s", file)
	}
	var planted []uint32
	for _, pref := range procs.A.E {
		if pref.Kind != ps.KName && pref.Kind != ps.KString {
			continue
		}
		info, err := t.Table.ProcInfo(pref.S)
		if err != nil {
			continue
		}
		stops, err := t.Table.Loci(info)
		if err != nil {
			continue
		}
		for i := range stops {
			if stops[i].Line == line {
				addr, err := t.stopLoc(&stops[i])
				if err != nil {
					return planted, err
				}
				if err := t.Bpts.Plant(addr); err != nil {
					return planted, err
				}
				planted = append(planted, addr)
			}
		}
	}
	if len(planted) == 0 {
		return nil, fmt.Errorf("core: no stopping point at %s:%d", file, line)
	}
	return planted, nil
}

// procEntryNameByAddr maps a procedure's code address to its entry
// name, building the table from the top-level procs array on first use
// (§2: ldb uses the procs array to build a table mapping procedure
// addresses to symbol-table entries).
func (t *Target) procEntryNameByAddr(addr uint32) (string, error) {
	if t.Degraded() {
		return "", ErrNoSymbols
	}
	if t.procsByAddr == nil {
		t.ensureCurrent()
		t.procsByAddr = make(map[uint32]string)
		procs, ok := t.Table.Top.GetName("procs")
		if !ok || procs.Kind != ps.KArray {
			return "", fmt.Errorf("core: no procs array")
		}
		for _, pref := range procs.A.E {
			if pref.Kind != ps.KName && pref.Kind != ps.KString {
				continue
			}
			entry, err := t.Table.EntryOf(pref.S)
			if err != nil {
				return "", err
			}
			w, ok := entry.GetName("where")
			if !ok {
				continue
			}
			o, err := t.D.evalWhere(w)
			if err != nil {
				return "", err
			}
			entry.PutName("where", o)
			t.procsByAddr[uint32(o.X.(*LocExt).Loc.Offset)] = pref.S
		}
	}
	p, ok := t.Table.ProcContaining(addr)
	if !ok {
		return "", fmt.Errorf("core: pc %#x is in no known procedure", addr)
	}
	if name, ok := t.procsByAddr[p.Addr]; ok {
		return name, nil
	}
	return "", fmt.Errorf("core: no symbols for procedure %s", p.Name)
}

// Context is a name-resolution context: a particular stopping point in
// a particular procedure, normally the place where control has stopped
// (§2).
type Context struct {
	ProcEntryName string
	Stop          *symtab.Stop
}

// ContextAt computes the resolution context for a frame: the procedure
// containing its pc and the nearest stopping point at or before it.
func (t *Target) ContextAt(f *frame.Frame) (Context, error) {
	entryName, err := t.procEntryNameByAddr(f.PC)
	if err != nil {
		return Context{}, err
	}
	info, err := t.Table.ProcInfo(entryName)
	if err != nil {
		return Context{}, err
	}
	stops, err := t.Table.Loci(info)
	if err != nil {
		return Context{}, err
	}
	ctx := Context{ProcEntryName: entryName}
	var bestAddr uint32
	for i := range stops {
		addr, err := t.stopLoc(&stops[i])
		if err != nil {
			return Context{}, err
		}
		if addr <= f.PC && (ctx.Stop == nil || addr >= bestAddr) {
			ctx.Stop = &stops[i]
			bestAddr = addr
		}
	}
	return ctx, nil
}

// Lookup resolves a name in the current frame's context.
func (t *Target) Lookup(id string) (symtab.Entry, error) {
	if t.Degraded() {
		return symtab.Entry{}, ErrNoSymbols
	}
	if t.CurFrame >= len(t.Frames) {
		return symtab.Entry{}, fmt.Errorf("core: no frame to resolve %q in", id)
	}
	f := t.Frames[t.CurFrame]
	ctx, err := t.ContextAt(f)
	if err != nil {
		return symtab.Entry{}, err
	}
	return t.Table.ResolveAt(ctx.ProcEntryName, ctx.Stop, id)
}

// WhereLoc computes an entry's location in the current frame,
// memoizing frame-independent results by replacement.
func (t *Target) WhereLoc(e symtab.Entry) (amem.Location, error) {
	t.ensureCurrent()
	w, ok := e.D.GetName("where")
	if !ok {
		return amem.Location{}, fmt.Errorf("core: %s has no location", e.Name())
	}
	o, err := t.D.evalWhere(w)
	if err != nil {
		return amem.Location{}, err
	}
	if frameIndependent(w) {
		e.D.PutName("where", o)
	}
	return o.X.(*LocExt).Loc, nil
}

// Print prints the value of name, resolved at the current stopping
// point, by interpreting the printer procedure from the value's type
// dictionary (§2).
func (t *Target) Print(id string) error {
	e, err := t.Lookup(id)
	if err != nil {
		return err
	}
	return t.PrintEntry(e)
}

// PrintEntry prints one entry's value through its type's printer.
func (t *Target) PrintEntry(e symtab.Entry) error {
	t.ensureCurrent()
	loc, err := t.WhereLoc(e)
	if err != nil {
		return err
	}
	f := t.Frames[t.CurFrame]
	td := e.TypeDict()
	if td == nil {
		return fmt.Errorf("core: %s has no type", e.Name())
	}
	t.D.In.Push(MemObj(f.Mem), LocObj(loc), ps.DictObj(td))
	if err := t.D.In.RunString("PrintValue"); err != nil {
		return err
	}
	t.D.In.Pretty.Put("\n")
	return nil
}

// AssignInt assigns an integer value to a scalar variable through the
// frame's abstract memory (register assignments go through the alias
// into the context; the nub restores them on continue, §4.1).
func (t *Target) AssignInt(id string, v int64) error {
	e, err := t.Lookup(id)
	if err != nil {
		return err
	}
	loc, err := t.WhereLoc(e)
	if err != nil {
		return err
	}
	td := e.TypeDict()
	size := 4
	if sz, ok := td.GetName("size"); ok && sz.I > 0 && sz.I <= 4 {
		size = int(sz.I)
	}
	if fs, ok := td.GetName("fsize"); ok {
		return t.Frames[t.CurFrame].Mem.StoreFloat(loc, int(fs.I), float64(v))
	}
	return t.Frames[t.CurFrame].Mem.StoreInt(loc, size, uint64(v))
}

// AssignFloat assigns a floating value.
func (t *Target) AssignFloat(id string, v float64) error {
	e, err := t.Lookup(id)
	if err != nil {
		return err
	}
	loc, err := t.WhereLoc(e)
	if err != nil {
		return err
	}
	td := e.TypeDict()
	fs, ok := td.GetName("fsize")
	if !ok {
		return fmt.Errorf("core: %s is not a floating variable", id)
	}
	return t.Frames[t.CurFrame].Mem.StoreFloat(loc, int(fs.I), v)
}

// FetchScalar reads a scalar variable's value (sign-extended) — the
// client-interface path used by tools built above ldb (§6).
func (t *Target) FetchScalar(id string) (int64, error) {
	e, err := t.Lookup(id)
	if err != nil {
		return 0, err
	}
	loc, err := t.WhereLoc(e)
	if err != nil {
		return 0, err
	}
	td := e.TypeDict()
	size := 4
	if sz, ok := td.GetName("size"); ok && sz.I > 0 && sz.I <= 4 {
		size = int(sz.I)
	}
	raw, err := t.Frames[t.CurFrame].Mem.FetchInt(loc, size)
	if err != nil {
		return 0, err
	}
	return amem.SignExtend(raw, size), nil
}

// FetchFloatVar reads a floating variable's value.
func (t *Target) FetchFloatVar(id string) (float64, error) {
	e, err := t.Lookup(id)
	if err != nil {
		return 0, err
	}
	loc, err := t.WhereLoc(e)
	if err != nil {
		return 0, err
	}
	td := e.TypeDict()
	fs, ok := td.GetName("fsize")
	if !ok {
		return 0, fmt.Errorf("core: %s is not a floating variable", id)
	}
	return t.Frames[t.CurFrame].Mem.FetchFloat(loc, int(fs.I))
}

// Backtrace walks the whole stack and returns the procedure names,
// innermost first.
func (t *Target) Backtrace(limit int) ([]string, error) {
	var out []string
	for i := 0; i < limit; i++ {
		f, err := t.Frame(i)
		if err != nil {
			break
		}
		out = append(out, f.Proc())
		if f.Proc() == "_start" {
			break
		}
	}
	return out, nil
}

// RegsRaw reads the general registers and pc straight from the nub's
// context record — the machine-level view that needs no frames and no
// symbol table, used when the target is attached in degraded mode.
func (t *Target) RegsRaw() (regs []uint32, pc uint32, err error) {
	l := t.Arch.Context()
	regs = make([]uint32, len(l.RegOffs))
	for i, off := range l.RegOffs {
		v, err := t.Client.FetchInt(amem.Data, t.Client.CtxAddr+uint32(off), 4)
		if err != nil {
			return nil, 0, err
		}
		regs[i] = uint32(v)
	}
	v, err := t.Client.FetchInt(amem.Data, t.Client.CtxAddr+uint32(l.PCOff), 4)
	if err != nil {
		return nil, 0, err
	}
	return regs, uint32(v), nil
}

// ExamineBytes reads raw target memory — degraded mode's substitute for
// printing variables.
func (t *Target) ExamineBytes(addr uint32, n int) ([]byte, error) {
	return t.Client.FetchBytes(amem.Data, addr, n)
}

// BreakAddr plants a breakpoint at a raw code address — degraded mode's
// substitute for source positions. Unlike the stopping-point scheme,
// the address may hold any instruction: resuming restores it, retires
// it with one machine step, and replants the trap.
func (t *Target) BreakAddr(addr uint32) error { return t.Bpts.PlantRaw(addr) }

// Kill terminates the target.
func (t *Target) Kill() error {
	t.Exited = true
	return t.Client.Kill()
}

// Detach breaks the connection, leaving the nub waiting for another
// debugger.
func (t *Target) Detach() error { return t.Client.Detach() }
