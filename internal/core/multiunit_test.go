package core

import (
	"strings"
	"testing"

	"ldb/internal/driver"
	"ldb/internal/nub"
)

// launchMulti builds several translation units and attaches a debugger.
func launchMulti(t *testing.T, d *Debugger, archName string, srcs []driver.Source) *Target {
	t.Helper()
	prog, err := driver.Build(srcs, driver.Options{Arch: archName, Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	client, _, _, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := d.AttachClient("multi", client, prog.LoaderPS)
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

// TestMultiUnitStatics: two compilation units each have a file-scope
// static named `counter`; name resolution must find the right one from
// each procedure's context ("the statics dictionary of the current
// procedure's compilation unit", §2), and the two anchor tables must
// both validate.
func TestMultiUnitStatics(t *testing.T) {
	srcs := []driver.Source{
		{Name: "alpha.c", Text: `
static int counter = 100;
int alpha() { counter = counter + 1; return counter; }
`},
		{Name: "beta.c", Text: `
static int counter = 200;
extern int alpha(void);
int beta() { counter = counter + 2; return counter; }
int main() { alpha(); beta(); alpha(); beta(); return 0; }
`},
	}
	var out strings.Builder
	d, _ := New(&out)
	tgt := launchMulti(t, d, "sparc", srcs)

	// Stop inside alpha: counter resolves to alpha.c's static.
	if _, err := tgt.BreakProc("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.BreakProc("beta"); err != nil {
		t.Fatal(err)
	}
	hits := map[string][]int64{}
	for i := 0; i < 4; i++ {
		ev, err := tgt.ContinueToBreakpoint()
		if err != nil || ev.Exited {
			t.Fatalf("hit %d: %v %v", i, ev, err)
		}
		bt, _ := tgt.Backtrace(2)
		v, err := tgt.FetchScalar("counter")
		if err != nil {
			t.Fatalf("hit %d in %s: %v", i, bt[0], err)
		}
		hits[bt[0]] = append(hits[bt[0]], v)
	}
	// At entry, counter has its pre-increment value.
	if got := hits["_alpha"]; len(got) != 2 || got[0] != 100 || got[1] != 101 {
		t.Fatalf("alpha counters: %v", got)
	}
	if got := hits["_beta"]; len(got) != 2 || got[0] != 200 || got[1] != 202 {
		t.Fatalf("beta counters: %v", got)
	}
	// The expression server also resolves per-context.
	if v, err := tgt.EvalInt("counter + 1"); err != nil || v != 203 {
		t.Fatalf("expr counter in beta context: %d, %v", v, err)
	}
	if err := tgt.Bpts.RemoveAll(); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.Continue(); err != nil || !ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
}

func TestNestedAggregatePrinting(t *testing.T) {
	src := `
struct inner { int a; char tag; };
struct outer { struct inner first; int arr[3]; struct inner *link; };
struct outer o;
struct inner other;
int main() {
	o.first.a = 7;
	o.first.tag = 'x';
	o.arr[0] = 1; o.arr[1] = 2; o.arr[2] = 3;
	other.a = 99;
	o.link = &other;
	return 0;
}
`
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "mips", "agg.c", src)
	stops, _, err := tgt.ProcStops("main")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.BreakStop("main", stops[len(stops)-2].Index); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	got := printOf(t, d, tgt, "o")
	// Nested printers compose: struct in struct, array in struct,
	// pointer member as hex.
	if !strings.HasPrefix(got, "{first={a=7, tag='x'}, arr={1, 2, 3}, link=0x") {
		t.Fatalf("print o = %q", got)
	}
	// An array of structs prints element-wise.
	got = printOf(t, d, tgt, "other")
	if got != "{a=99, tag='\\000'}" {
		t.Fatalf("print other = %q", got)
	}
	// Member access through the expression server agrees.
	if v, err := tgt.EvalInt("o.first.a + o.arr[2]"); err != nil || v != 10 {
		t.Fatalf("expr: %d, %v", v, err)
	}
	if v, err := tgt.EvalInt("o.link->a"); err != nil || v != 99 {
		t.Fatalf("expr link: %d, %v", v, err)
	}
}

func TestAttachErrors(t *testing.T) {
	// A symbol table for the wrong architecture is refused (§2: the
	// architecture recorded in the top-level dictionary must match).
	progM, err := driver.Build([]driver.Source{{Name: "fib.c", Text: fibC}}, driver.Options{Arch: "mips", Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	progS, err := driver.Build([]driver.Source{{Name: "fib.c", Text: fibC}}, driver.Options{Arch: "sparc", Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	client, _, _, err := nub.Launch(progM.Arch, progM.Image.Text, progM.Image.Data, progM.Image.Entry)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	d, _ := New(&out)
	if _, err := d.AttachClient("bad", client, progS.LoaderPS); err == nil ||
		!strings.Contains(err.Error(), "sparc") {
		t.Fatalf("cross-architecture symbol table accepted: %v", err)
	}
	// Garbage loader PostScript is refused.
	client2, _, _, err := nub.Launch(progM.Arch, progM.Image.Text, progM.Image.Data, progM.Image.Entry)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AttachClient("bad2", client2, "( this is not a loader table"); err == nil {
		t.Fatal("garbage loader accepted")
	}
}

func TestPrintProcedureItself(t *testing.T) {
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "vax", "fib.c", fibC)
	if _, err := tgt.BreakStop("fib", 7); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	// fib is visible from its own stopping points (Fig. 2's chain ends
	// at the procedure); its value prints as its name via PROC.
	if got := printOf(t, d, tgt, "fib"); got != "_fib" {
		t.Fatalf("print fib = %q", got)
	}
	// And a declaration can be rendered from the entry.
	e, err := tgt.Lookup("fib")
	if err != nil {
		t.Fatal(err)
	}
	if decl := e.Decl(); decl != "void fib(int)" {
		t.Fatalf("decl = %q", decl)
	}
}

// TestScopeShadowingLive: two variables named x in nested scopes; the
// uplink walk finds the innermost at an inner stopping point and the
// outer one elsewhere — Fig. 2's tree doing its job in a live session.
func TestScopeShadowingLive(t *testing.T) {
	src := `
int observe(int v) { return v; }
int main() {
	int x;
	x = 10;
	observe(x);
	{
		int x;
		x = 99;
		observe(x);
	}
	observe(x);
	return 0;
}
`
	for _, a := range []string{"mips", "vax"} {
		var out strings.Builder
		d, _ := New(&out)
		tgt := launch(t, d, a, "shadow.c", src)
		stops, _, err := tgt.ProcStops("main")
		if err != nil {
			t.Fatal(err)
		}
		// Plant at every observe() call site; check x at each.
		var wantByHit []int64
		for i := range stops {
			// stops at the three observe(...) statements: find them by
			// looking at line numbers 6, 10, 12.
			switch stops[i].Line {
			case 6, 10, 12:
				if _, err := tgt.BreakStop("main", stops[i].Index); err != nil {
					t.Fatal(err)
				}
			}
		}
		wantByHit = []int64{10, 99, 10}
		for hit := 0; hit < 3; hit++ {
			ev, err := tgt.ContinueToBreakpoint()
			if err != nil || ev.Exited {
				t.Fatalf("%s hit %d: %v %v", a, hit, ev, err)
			}
			v, err := tgt.FetchScalar("x")
			if err != nil {
				t.Fatalf("%s hit %d: %v", a, hit, err)
			}
			if v != wantByHit[hit] {
				t.Errorf("%s hit %d: x = %d, want %d", a, hit, v, wantByHit[hit])
			}
			// The expression server sees the same x.
			ev2, err := tgt.EvalInt("x + 0")
			if err != nil || ev2 != wantByHit[hit] {
				t.Errorf("%s hit %d: expr x = %d, %v", a, hit, ev2, err)
			}
		}
	}
}

// TestUnionPrinting: the UNION printer shows every interpretation of
// the shared storage, and the expression server reads members through
// the same type dictionaries.
func TestUnionPrinting(t *testing.T) {
	src := `
union value { int i; char c; };
union value v;
union value *p;
int main() {
	v.i = 65;
	p = &v;
	return 0;
}
`
	// On the little-endian VAX the char view of int 65 is 'A'; on the
	// big-endian 68020 the byte at offset 0 is the most significant, so
	// the same union reads '\000'. The debugger sees exactly what the
	// target sees, through the wire memory's byte order.
	for _, c := range []struct {
		arch  string
		want  string
		wantC int64
	}{
		{"vax", "{i=65 | c='A'}", 65},
		{"m68k", "{i=65 | c='\\000'}", 0},
	} {
		var out strings.Builder
		d, _ := New(&out)
		tgt := launch(t, d, c.arch, "un.c", src)
		stops, _, err := tgt.ProcStops("main")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tgt.BreakStop("main", stops[len(stops)-2].Index); err != nil {
			t.Fatal(err)
		}
		if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
			t.Fatalf("%v %v", ev, err)
		}
		if got := printOf(t, d, tgt, "v"); got != c.want {
			t.Fatalf("%s: print v = %q, want %q", c.arch, got, c.want)
		}
		if v, err := tgt.EvalInt("v.c"); err != nil || v != c.wantC {
			t.Fatalf("%s: v.c = %d, %v", c.arch, v, err)
		}
		if v, err := tgt.EvalInt("p->i + 1"); err != nil || v != 66 {
			t.Fatalf("%s: p->i = %d, %v", c.arch, v, err)
		}
		// Writing through one member is visible through the other.
		if _, err := tgt.Eval("v.i = 97"); err != nil {
			t.Fatal(err)
		}
		if v, _ := tgt.EvalInt("v.i"); v != 97 {
			t.Fatalf("%s: after store v.i = %d", c.arch, v)
		}
		e, err := tgt.Lookup("v")
		if err != nil || e.Decl() != "union value v" {
			t.Fatalf("decl = %q, %v", e.Decl(), err)
		}
	}
}

// TestInitializedDataVisible: braced initializers land in the data
// segment and the debugger sees them immediately at the first stop.
func TestInitializedDataVisible(t *testing.T) {
	src := `
int primes[5] = {2, 3, 5, 7, 11};
char msg[] = "hey";
struct point { int x; int y; } origin = {8, 9};
int main() { return 0; }
`
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "mipsbe", "init.c", src)
	if _, err := tgt.BreakProc("main"); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	if got := printOf(t, d, tgt, "primes"); got != "{2, 3, 5, 7, 11}" {
		t.Fatalf("primes = %q", got)
	}
	if got := printOf(t, d, tgt, "origin"); got != "{x=8, y=9}" {
		t.Fatalf("origin = %q", got)
	}
	if got := printOf(t, d, tgt, "msg"); got != `{'h', 'e', 'y', '\000'}` {
		t.Fatalf("msg = %q", got)
	}
	if v, err := tgt.EvalInt("primes[4] - origin.x"); err != nil || v != 3 {
		t.Fatalf("expr: %d %v", v, err)
	}
}

// TestGotoStops: a goto statement is a stopping point like any other;
// breakpoints planted on it hit before the jump.
func TestGotoStops(t *testing.T) {
	src := `
int n = 0;
int main() {
	n = 1;
again:
	n = n + 1;
	if (n < 4) goto again;
	return 0;
}
`
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "sparc", "g.c", src)
	stops, _, err := tgt.ProcStops("main")
	if err != nil {
		t.Fatal(err)
	}
	// Find the goto's stop by line (the "if" line holds the condition
	// stop; the goto is its own).
	planted := false
	for _, s := range stops {
		if s.Line == 7 { // if (n < 4) goto again;
			if _, err := tgt.BreakStop("main", s.Index); err != nil {
				t.Fatal(err)
			}
			planted = true
		}
	}
	if !planted {
		t.Fatalf("no stop on the goto line; stops: %+v", stops)
	}
	var ns []int64
	for {
		ev, err := tgt.ContinueToBreakpoint()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Exited {
			break
		}
		v, err := tgt.FetchScalar("n")
		if err != nil {
			t.Fatal(err)
		}
		ns = append(ns, v)
	}
	// The if-line stops fire once per iteration: n = 2, 3, 4.
	want := []int64{2, 3, 4}
	if len(ns) < 3 {
		t.Fatalf("hits: %v", ns)
	}
	for i, w := range want {
		found := false
		for _, v := range ns {
			if v == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing hit with n=%d (hit %d); all: %v", w, i, ns)
		}
	}
}
