package core

import (
	"strings"
	"testing"
)

// TestExpressionServerFib evaluates expressions and assignments via the
// expression server against a stopped fib (§3).
func TestExpressionServerFib(t *testing.T) {
	for _, a := range allArches {
		t.Run(a, func(t *testing.T) {
			var out strings.Builder
			d, err := New(&out)
			if err != nil {
				t.Fatal(err)
			}
			tgt := launch(t, d, a, "fib.c", fibC)
			if _, err := tgt.BreakStop("fib", 7); err != nil {
				t.Fatal(err)
			}
			// Run to the third hit: i == 4, a = {1 1 2 3 ...}.
			for k := 0; k < 3; k++ {
				if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
					t.Fatalf("%v %v", ev, err)
				}
			}
			cases := map[string]int64{
				"i":                 4,
				"n":                 10,
				"i + 1":             5,
				"2 * i - n":         -2,
				"a[2]":              2,
				"a[i-1] + a[i-2]":   5,
				"a[0] == 1":         1,
				"i < n && a[1] > 0": 1,
				"i > n || a[3] < 0": 0,
				"-i":                -4,
				"~0":                -1,
				"!i":                0,
				"(i + n) % 3":       2,
				"i << 2":            16,
				"&a[3] - &a[0]":     3,
				"*(&a[2])":          2,
				"i > 3 ? 100 : 200": 100,
				"sizeof(int)":       4,
				"sizeof(a)":         80,
				"sizeof(a[0])":      4,
			}
			for text, want := range cases {
				got, err := tgt.EvalInt(text)
				if err != nil {
					t.Errorf("eval %q: %v", text, err)
					continue
				}
				if got != want {
					t.Errorf("eval %q = %d, want %d", text, got, want)
				}
			}
			// Assignment through the expression server.
			if v, err := tgt.EvalInt("n = i + 1"); err != nil || v != 5 {
				t.Fatalf("assign: %d, %v", v, err)
			}
			if v, err := tgt.FetchScalar("n"); err != nil || v != 5 {
				t.Fatalf("after assign, n = %d, %v", v, err)
			}
			// Increment operators.
			if v, err := tgt.EvalInt("i++"); err != nil || v != 4 {
				t.Fatalf("i++: %d, %v", v, err)
			}
			if v, err := tgt.EvalInt("i"); err != nil || v != 5 {
				t.Fatalf("after i++: %d, %v", v, err)
			}
			if v, err := tgt.EvalInt("--i"); err != nil || v != 4 {
				t.Fatalf("--i: %d, %v", v, err)
			}
			// Procedure calls in expressions are the §7.1 extension — but
			// this one re-enters fib and hits our own breakpoint at stop
			// 7, so the call aborts safely and the session survives.
			if _, err := tgt.Eval("fib(3)"); err == nil || !strings.Contains(err.Error(), "instead of returning") {
				t.Errorf("call: err = %v", err)
			}
			// Unknown identifiers report an error but leave the session
			// usable.
			if _, err := tgt.Eval("nosuchvar + 1"); err == nil {
				t.Error("unknown identifier must fail")
			}
			if v, err := tgt.EvalInt("i"); err != nil || v != 4 {
				t.Fatalf("session broken after error: %d, %v", v, err)
			}
		})
	}
}

func TestExpressionServerFloats(t *testing.T) {
	src := `
double d;
float f;
int main() { d = 2.5; f = 0.5; return 0; }
`
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "m68k", "flt.c", src)
	stops, _, err := tgt.ProcStops("main")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.BreakStop("main", stops[len(stops)-2].Index); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	if v, err := tgt.EvalFloat("d + f"); err != nil || v != 3.0 {
		t.Errorf("d + f = %g, %v", v, err)
	}
	if v, err := tgt.EvalFloat("d * 2.0"); err != nil || v != 5.0 {
		t.Errorf("d * 2.0 = %g, %v", v, err)
	}
	if v, err := tgt.EvalInt("(int) d"); err != nil || v != 2 {
		t.Errorf("(int)d = %d, %v", v, err)
	}
	if v, err := tgt.EvalFloat("d = 7.25"); err != nil || v != 7.25 {
		t.Errorf("d assign = %g, %v", v, err)
	}
	if v, err := tgt.FetchFloatVar("d"); err != nil || v != 7.25 {
		t.Errorf("after assign d = %g, %v", v, err)
	}
	if v, err := tgt.EvalInt("d > 7.0"); err != nil || v != 1 {
		t.Errorf("d > 7.0 = %d, %v", v, err)
	}
}

func TestExpressionServerStructs(t *testing.T) {
	src := `
struct point { int x; int y; };
struct point p;
struct point *pp;
int main() { p.x = 3; p.y = 4; pp = &p; return 0; }
`
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "vax", "pt.c", src)
	stops, _, err := tgt.ProcStops("main")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.BreakStop("main", stops[len(stops)-2].Index); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	if v, err := tgt.EvalInt("p.x + p.y"); err != nil || v != 7 {
		t.Errorf("p.x + p.y = %d, %v", v, err)
	}
	if v, err := tgt.EvalInt("pp->y"); err != nil || v != 4 {
		t.Errorf("pp->y = %d, %v", v, err)
	}
	if v, err := tgt.EvalInt("p.x = 9"); err != nil || v != 9 {
		t.Errorf("assign member: %d, %v", v, err)
	}
	if v, err := tgt.EvalInt("pp->x"); err != nil || v != 9 {
		t.Errorf("after member assign pp->x = %d, %v", v, err)
	}
}

func TestExpressionServerLocals(t *testing.T) {
	// Frame-resident identifiers resolve through FrameOffset, so the
	// same expression gives different answers in different frames.
	src := `
int depth(int k) {
	int here;
	here = k * 10;
	if (k > 0) return depth(k - 1);
	return here;
}
int main() { return depth(3); }
`
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "sparc", "rec.c", src)
	stops, _, err := tgt.ProcStops("depth")
	if err != nil {
		t.Fatal(err)
	}
	// Break at the final return (k == 0): recursion is 4 deep.
	retIdx := stops[len(stops)-2].Index
	if _, err := tgt.BreakStop("depth", retIdx); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	if v, err := tgt.EvalInt("k"); err != nil || v != 0 {
		t.Fatalf("k in top frame = %d, %v", v, err)
	}
	if err := tgt.SelectFrame(1); err != nil {
		t.Fatal(err)
	}
	if v, err := tgt.EvalInt("k"); err != nil || v != 1 {
		t.Fatalf("k in caller frame = %d, %v", v, err)
	}
	if v, err := tgt.EvalInt("here + k"); err != nil || v != 11 {
		t.Fatalf("here + k in caller = %d, %v", v, err)
	}
}
