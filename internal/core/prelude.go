package core

// PreludePS is the shared, machine-independent PostScript that ldb
// reads at startup: the printer procedures symbol tables refer to
// (INT, ARRAY, STRUCT, ...), written against the prettyprinter
// operators Put/Break/Begin/End and the debugging operators of the
// dialect. It is the analog of the paper's 1203 lines of shared
// PostScript; the ARRAY procedure follows §2's listing.
const PreludePS = `
% ldb shared prelude: machine-independent printer procedures.
% Every printer takes (memory location typedict) and prints the value.

/ArrayLimit 10 def

/PrintValue { dup /printer get exec } def

% The expression server writes this after the compiled procedure to
% tell ldb it can stop listening to the pipe (§3).
/ExpressionServer.result { stop } def

/INT     { pop 4 FetchSigned Put } def
/UINT    { pop 4 FetchInt Put } def
/SHORT   { pop 2 FetchSigned Put } def
/CHAR    { pop 1 FetchSigned CharStr Put } def
/FLOAT   { pop 4 FetchFloat Put } def
/DOUBLE  { pop 8 FetchFloat Put } def
/LDOUBLE { /fsize get FetchFloat Put } def
/VOIDP   { pop 4 FetchInt HexStr Put } def
/PROC    { pop exch pop LocOffset ProcName Put } def

/PTR {
    4 dict begin
    /&t exch def /&loc exch def /&mem exch def
    /&v &mem &loc 4 FetchInt def
    &t /&basetype known
    { &t /&basetype get /kind get (function) eq
      { &v ProcName Put }
      { &v HexStr Put } ifelse }
    { &v HexStr Put } ifelse
    end
} def

% ARRAY prints a C array (§2): an opening brace, then the elements at
% increasing offsets with commas and potential line breaks, eliding
% past an adjustable limit.
/ARRAY {
    4 dict begin
    /&t exch def /&loc exch def /&mem exch def
    ({) Put 0 Begin
    0 1 &t /&arraysize get 1 sub {
        dup 0 ne { (, ) Put 0 Break } if
        dup ArrayLimit ge { (...) Put pop exit } if
        &t /&elemsize get mul &loc exch Shifted
        &mem exch &t /&elemtype get PrintValue
    } for
    End (}) Put
    end
} def

/STRUCT {
    5 dict begin
    /&t exch def /&loc exch def /&mem exch def
    ({) Put 0 Begin
    /&first 1 def
    &t /&fields GetMemo {
        aload pop
        /&ft exch def /&off exch def /&fname exch def
        &first 0 eq { (, ) Put 0 Break } if
        /&first 0 def
        &fname Put (=) Put
        &mem &loc &off Shifted &ft PrintValue
    } forall
    End (}) Put
    end
} def
/UNION {
    % every member shares offset 0: print each interpretation.
    5 dict begin
    /&t exch def /&loc exch def /&mem exch def
    ({) Put 0 Begin
    /&first 1 def
    &t /&fields GetMemo {
        aload pop
        /&ft exch def /&off exch def /&fname exch def
        &first 0 eq { ( | ) Put 0 Break } if
        /&first 0 def
        &fname Put (=) Put
        &mem &loc &off Shifted &ft PrintValue
    } forall
    End (}) Put
    end
} def
`

// archPS holds the machine-dependent PostScript for each target —
// addressing local variables and naming the machine (§4.3 counts
// 13-18 such lines per target). The FrameOffset procedure turns a
// frame offset into a data location: through the virtual frame pointer
// (extra register 1) on the MIPS, through the frame-pointer register
// elsewhere.
var archPS = map[string]string{
	"mips": `<<
  /Machine (mips)
  /FrameOffset { 1 XReg add DLoc }
  /WordSize 4
  /ByteOrder (little)
>>`,
	"mipsbe": `<<
  /Machine (mipsbe)
  /FrameOffset { 1 XReg add DLoc }
  /WordSize 4
  /ByteOrder (big)
>>`,
	"sparc": `<<
  /Machine (sparc)
  /FrameOffset { 30 Reg add DLoc }
  /WordSize 4
  /ByteOrder (big)
>>`,
	"m68k": `<<
  /Machine (m68k)
  /FrameOffset { 14 Reg add DLoc }
  /WordSize 4
  /ByteOrder (big)
>>`,
	"vax": `<<
  /Machine (vax)
  /FrameOffset { 13 Reg add DLoc }
  /WordSize 4
  /ByteOrder (little)
>>`,
}

// ArchPSLines reports the number of non-blank machine-dependent
// PostScript lines per target (the analog of the paper's per-target
// PostScript row in the §4.3 table). cmd/locstats uses it.
func ArchPSLines() map[string]int {
	out := make(map[string]int)
	for name, src := range archPS {
		n := 0
		for _, line := range splitLines(src) {
			if trimSpace(line) != "" {
				n++
			}
		}
		out[name] = n
	}
	return out
}

// PreludeLines reports the number of non-blank lines of shared
// PostScript.
func PreludeLines() int {
	n := 0
	for _, line := range splitLines(PreludePS) {
		if trimSpace(line) != "" {
			n++
		}
	}
	return n
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func trimSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}
