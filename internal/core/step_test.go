package core

import (
	"strings"
	"testing"

	"ldb/internal/driver"
	"ldb/internal/nub"
)

// TestSourceLevelStepping exercises §7.1's stepping built on
// breakpoints: Step visits consecutive stopping points, into and out of
// calls, without any single-step support in the nub protocol.
func TestSourceLevelStepping(t *testing.T) {
	src := `
int twice(int x) {
	int d;
	d = x + x;
	return d;
}
int main() {
	int a;
	int b;
	a = 3;
	b = twice(a);
	return a + b;
}
`
	for _, a := range allArches {
		t.Run(a, func(t *testing.T) {
			var out strings.Builder
			d, _ := New(&out)
			tgt := launch(t, d, a, "step.c", src)
			// Begin at main's entry.
			if _, err := tgt.BreakProc("main"); err != nil {
				t.Fatal(err)
			}
			if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
				t.Fatalf("%v %v", ev, err)
			}
			if err := tgt.Bpts.RemoveAll(); err != nil {
				t.Fatal(err)
			}
			// Step: a = 3.
			if ev, err := tgt.Step(); err != nil || ev.Exited {
				t.Fatalf("step 1: %v %v", ev, err)
			}
			// Step: b = twice(a); next step lands INSIDE twice.
			if ev, err := tgt.Step(); err != nil || ev.Exited {
				t.Fatalf("step 2: %v %v", ev, err)
			}
			if ev, err := tgt.Step(); err != nil || ev.Exited {
				t.Fatalf("step 3: %v %v", ev, err)
			}
			bt, _ := tgt.Backtrace(8)
			if bt[0] != "_twice" {
				t.Fatalf("step did not enter twice: %v", bt)
			}
			// Finish: back out to main, with twice's return value
			// committed.
			if ev, err := tgt.Finish(); err != nil || ev.Exited {
				t.Fatalf("finish: %v %v", ev, err)
			}
			bt, _ = tgt.Backtrace(8)
			if bt[0] != "_main" {
				t.Fatalf("finish did not return to main: %v", bt)
			}
			// Keep stepping to the end.
			for i := 0; i < 20; i++ {
				ev, err := tgt.Step()
				if err != nil {
					t.Fatal(err)
				}
				if ev.Exited {
					if ev.Status != 9 {
						t.Fatalf("exit status %d, want 9", ev.Status)
					}
					return
				}
			}
			t.Fatal("never finished stepping")
		})
	}
}

func TestNextTreatsCallsAsAtomic(t *testing.T) {
	src := `
int helper(int x) { int h; h = x * 2; return h; }
int main() {
	int a;
	a = helper(1);
	a = a + helper(2);
	return a;
}
`
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "mips", "next.c", src)
	if _, err := tgt.BreakProc("main"); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	if err := tgt.Bpts.RemoveAll(); err != nil {
		t.Fatal(err)
	}
	// Next over both statements: the stack never appears deeper.
	for i := 0; i < 2; i++ {
		ev, err := tgt.Next()
		if err != nil || ev.Exited {
			t.Fatalf("next %d: %v %v", i, ev, err)
		}
		if bt, _ := tgt.Backtrace(4); bt[0] != "_main" {
			t.Fatalf("next %d stopped in %v", i, bt)
		}
	}
	if v, err := tgt.FetchScalar("a"); err != nil || v != 2 {
		t.Fatalf("after next 2: a = %d, %v", v, err)
	}
}

func TestConditionalBreakpoint(t *testing.T) {
	// §7.1: event-driven debugging subsumes conditional breakpoints.
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "sparc", "fib.c", fibC)
	if _, err := tgt.BreakStopIf("fib", 7, "i == 6"); err != nil {
		t.Fatal(err)
	}
	ev, err := tgt.ContinueConditional()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Exited {
		t.Fatal("exited without hitting the condition")
	}
	if v, _ := tgt.FetchScalar("i"); v != 6 {
		t.Fatalf("stopped with i = %d, want 6", v)
	}
	// Clearing the condition stops at the next hit regardless.
	for addr := range map[uint32]string{} {
		_ = addr
	}
	tgt.SetCondition(ev.PC, "")
	ev, err = tgt.ContinueConditional()
	if err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	if v, _ := tgt.FetchScalar("i"); v != 7 {
		t.Fatalf("unconditional hit at i = %d, want 7", v)
	}
}

func TestRunEventsCollectsTrace(t *testing.T) {
	// An event-action client built above ldb (§6): log i at every hit
	// of the loop body, never stopping until the program ends.
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "vax", "fib.c", fibC)
	if _, err := tgt.BreakStop("fib", 7); err != nil {
		t.Fatal(err)
	}
	var trace []int64
	ev, err := tgt.RunEvents(func(t *Target, ev *nub.Event) (bool, error) {
		v, err := t.FetchScalar("i")
		if err != nil {
			return true, err
		}
		trace = append(trace, v)
		return false, nil // always resume
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Exited {
		t.Fatalf("expected exit, got %v", ev)
	}
	want := []int64{2, 3, 4, 5, 6, 7, 8, 9}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v", trace)
		}
	}
}

// TestBreakpointRecoveryAfterCrash exercises §7.1's protocol
// enrichment end to end: debugger one plants breakpoints and vanishes;
// debugger two recovers them from the nub — including the overwritten
// instructions — and debugging continues correctly.
func TestBreakpointRecoveryAfterCrash(t *testing.T) {
	prog, err := driver.Build([]driver.Source{{Name: "fib.c", Text: fibC}}, driver.Options{Arch: "m68k", Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	client1, n, _, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		t.Fatal(err)
	}
	var out1 strings.Builder
	d1, _ := New(&out1)
	t1, err := d1.AttachClient("one", client1, prog.LoaderPS)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := t1.BreakStop("fib", 7)
	if err != nil {
		t.Fatal(err)
	}
	if ev, err := t1.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	// Debugger one "crashes": the connection just goes away (the first
	// ldb never detaches or removes its breakpoint).
	client1.Close()

	// Debugger two connects fresh.
	client2, err := nub.Pair(n)
	if err != nil {
		t.Fatal(err)
	}
	var out2 strings.Builder
	d2, _ := New(&out2)
	t2, err := d2.AttachClient("two", client2, prog.LoaderPS)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := t2.RecoverBreakpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0] != addr {
		t.Fatalf("recovered %v, want [%#x]", recovered, addr)
	}
	// The recovered breakpoint behaves like its own: the target resumes
	// past it and hits it again.
	if ev, err := t2.ContinueToBreakpoint(); err != nil || ev.Exited || ev.PC != addr {
		t.Fatalf("%v %v", ev, err)
	}
	if v, _ := t2.FetchScalar("i"); v != 3 {
		t.Fatalf("i = %d after recovery, want 3", v)
	}
	// And it can be removed cleanly, restoring the no-op.
	if err := t2.Bpts.Remove(addr); err != nil {
		t.Fatal(err)
	}
	if ev, err := t2.Continue(); err != nil || !ev.Exited || ev.Status != 0 {
		t.Fatalf("final: %v %v", ev, err)
	}
}
