package core

import (
	"strings"
	"testing"
)

// TestPostScriptDescribesNubContext reproduces the §7 demonstration:
// PostScript code reads the machine-dependent description of the nub's
// context record and constructs a host-language type declaration for
// it — symbol tables (and the machine-dependent dictionaries) are data
// that PostScript programs can manipulate.
func TestPostScriptDescribesNubContext(t *testing.T) {
	var out strings.Builder
	d, err := New(&out)
	if err != nil {
		t.Fatal(err)
	}
	tgt := launch(t, d, "mipsbe", "fib.c", fibC)
	_ = tgt
	// Generate a Go-flavored struct description of the context from
	// the /Context dictionary on the architecture dictionary stack.
	script := `
Context begin
  (type Context struct { // ) print Machine print ( \n) print
  (    pc     uint32 // offset ) print pc cvs print (\n) print
  (    flag   uint32 // offset ) print flag cvs print (\n) print
  (    regs   [) print regs length cvs print (]uint32\n) print
  (    fregs  [) print fregs length cvs print (]float) print
  fregsize 12 eq { (80) } { (64) } ifelse print (\n) print
  floatwordswap { (    // saved doubles are word-swapped\n) print } if
  (}\n) print
end
`
	if err := d.In.RunString(script); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"type Context struct { // mipsbe",
		"pc     uint32 // offset 0",
		"regs   [32]uint32",
		"fregs  [8]float64",
		"word-swapped", // the big-endian MIPS quirk is visible in the data
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
}

// TestArchDictContextMatchesGo cross-checks the PostScript description
// against the Go layout for every target.
func TestArchDictContextMatchesGo(t *testing.T) {
	var out strings.Builder
	d, err := New(&out)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range allArches {
		tgt := launch(t, d, a, "fib.c", fibC)
		d.Switch(tgt)
		l := tgt.Arch.Context()
		for expr, want := range map[string]int64{
			"Context /size get":        int64(l.Size),
			"Context /pc get":          int64(l.PCOff),
			"Context /regs get length": int64(len(l.RegOffs)),
			"Context /fregsize get":    int64(l.FRegSize),
		} {
			o, err := d.In.Eval(expr)
			if err != nil || o.I != want {
				t.Errorf("%s: %s = %v (%v), want %d", a, expr, o.I, err, want)
			}
		}
	}
}
