package core

import (
	"strings"
	"testing"

	"ldb/internal/arch"
	"ldb/internal/driver"
	"ldb/internal/link"
	"ldb/internal/nub"
	"ldb/internal/ps"
)

var allArches = []string{"mips", "mipsbe", "sparc", "m68k", "vax"}

// fibC is the example program of Fig. 1.
const fibC = `void fib(int n)
{
	static int a[20];
	if (n > 20) n = 20;
	a[0] = a[1] = 1;
	{	int i;
		for (i=2; i<n; i++)
			a[i] = a[i-1] + a[i-2];
	}
	{	int j;
		for (j=0; j<n; j++)
			printf("%d ", a[j]);
	}
	printf("\n");
}
int main() { fib(10); return 0; }
`

// launch builds src for archName with debugging, starts it under a nub,
// and attaches a debugger.
func launch(t *testing.T, d *Debugger, archName, file, src string) *Target {
	t.Helper()
	prog, err := driver.Build([]driver.Source{{Name: file, Text: src}}, driver.Options{Arch: archName, Debug: true})
	if err != nil {
		t.Fatalf("%s: build: %v", archName, err)
	}
	client, _, proc, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		t.Fatalf("%s: launch: %v", archName, err)
	}
	tgt, err := d.AttachClient(archName+":"+file, client, prog.LoaderPS)
	if err != nil {
		t.Fatalf("%s: attach: %v", archName, err)
	}
	tgt.Stdout = &proc.Stdout
	return tgt
}

// printOf runs Print and returns what it wrote.
func printOf(t *testing.T, d *Debugger, tgt *Target, name string) string {
	t.Helper()
	var buf strings.Builder
	old := d.In.Stdout
	d.In.Stdout = &buf
	defer func() { d.In.Stdout = old }()
	if err := tgt.Print(name); err != nil {
		t.Fatalf("print %s: %v", name, err)
	}
	return strings.TrimRight(buf.String(), "\n")
}

// TestFibSessionAllTargets replays the paper's central scenario on
// every target: stop before main, plant a breakpoint at the body of
// the first loop, inspect i, a, and n, walk the stack, assign to n,
// and run to completion.
func TestFibSessionAllTargets(t *testing.T) {
	for _, a := range allArches {
		t.Run(a, func(t *testing.T) {
			var out strings.Builder
			d, err := New(&out)
			if err != nil {
				t.Fatal(err)
			}
			tgt := launch(t, d, a, "fib.c", fibC)
			if !tgt.Stopped() || tgt.Client.Last.Code != arch.TrapPause {
				t.Fatalf("not paused before main: %v", tgt.Client.Last)
			}
			// The paper plants a breakpoint at stopping point 7 of fib
			// (the loop body a[i] = ...).
			addr, err := tgt.BreakStop("fib", 7)
			if err != nil {
				t.Fatal(err)
			}
			if addr == 0 {
				t.Fatal("zero breakpoint address")
			}
			ev, err := tgt.ContinueToBreakpoint()
			if err != nil {
				t.Fatal(err)
			}
			if ev.Exited || ev.PC != addr {
				t.Fatalf("stopped at %v, want pc=%#x", ev, addr)
			}
			// First hit: i == 2; i, a, n, and fib are visible.
			if got := printOf(t, d, tgt, "i"); got != "2" {
				t.Errorf("print i = %q, want 2", got)
			}
			if got := printOf(t, d, tgt, "n"); got != "10" {
				t.Errorf("print n = %q, want 10", got)
			}
			got := printOf(t, d, tgt, "a")
			if !strings.HasPrefix(got, "{1, 1, 0") || !strings.Contains(got, "...") {
				t.Errorf("print a = %q", got)
			}
			// j is NOT visible at stopping point 7.
			if _, err := tgt.Lookup("j"); err == nil {
				t.Error("j must not be visible at stop 7")
			}
			// Walk the stack: fib ← main ← _start.
			bt, err := tgt.Backtrace(10)
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"_fib", "_main", "_start"}
			if strings.Join(bt, " ") != strings.Join(want, " ") {
				t.Fatalf("backtrace = %v, want %v", bt, want)
			}
			// Second hit: i == 3, a[2] now filled in.
			if ev, err = tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
				t.Fatalf("second continue: %v %v", ev, err)
			}
			if got := printOf(t, d, tgt, "i"); got != "3" {
				t.Errorf("second hit: i = %q, want 3", got)
			}
			if v, err := tgt.FetchScalar("i"); err != nil || v != 3 {
				t.Errorf("FetchScalar i = %d, %v", v, err)
			}
			// Assign n = 5 through the debugger, remove the breakpoint,
			// and run to completion: the program now prints 5 numbers.
			if err := tgt.AssignInt("n", 5); err != nil {
				t.Fatal(err)
			}
			if got := printOf(t, d, tgt, "n"); got != "5" {
				t.Errorf("after assignment: n = %q", got)
			}
			if err := tgt.Bpts.RemoveAll(); err != nil {
				t.Fatal(err)
			}
			ev, err = tgt.Continue()
			if err != nil {
				t.Fatal(err)
			}
			if !ev.Exited || ev.Status != 0 {
				t.Fatalf("final event: %v", ev)
			}
		})
	}
}

func TestFrameSelectionAndLocalsInCaller(t *testing.T) {
	src := `
int inner(int x) { int loc; loc = x * 2; return loc; }
int outer(int y) { int mid; mid = y + 1; return inner(mid); }
int main() { return outer(20); }
`
	for _, a := range allArches {
		var out strings.Builder
		d, err := New(&out)
		if err != nil {
			t.Fatal(err)
		}
		tgt := launch(t, d, a, "nest.c", src)
		// Break at inner's return statement (after loc is set).
		stops, _, err := tgt.ProcStops("inner")
		if err != nil {
			t.Fatal(err)
		}
		// The return is the next-to-last stop (last is the exit stop).
		idx := stops[len(stops)-2].Index
		if _, err := tgt.BreakStop("inner", idx); err != nil {
			t.Fatal(err)
		}
		ev, err := tgt.ContinueToBreakpoint()
		if err != nil || ev.Exited {
			t.Fatalf("%s: %v %v", a, ev, err)
		}
		if v, err := tgt.FetchScalar("loc"); err != nil || v != 42 {
			t.Errorf("%s: loc = %d, %v", a, v, err)
		}
		if v, err := tgt.FetchScalar("x"); err != nil || v != 21 {
			t.Errorf("%s: x = %d, %v", a, v, err)
		}
		// Select the caller's frame: mid and y are visible there.
		if err := tgt.SelectFrame(1); err != nil {
			t.Fatalf("%s: select frame 1: %v", a, err)
		}
		if v, err := tgt.FetchScalar("mid"); err != nil || v != 21 {
			t.Errorf("%s: caller mid = %d, %v", a, v, err)
		}
		if v, err := tgt.FetchScalar("y"); err != nil || v != 20 {
			t.Errorf("%s: caller y = %d, %v", a, v, err)
		}
		// loc is not visible in the caller.
		if err := tgt.SelectFrame(1); err != nil {
			t.Fatal(err)
		}
		if _, err := tgt.Lookup("loc"); err == nil {
			t.Errorf("%s: loc visible in caller", a)
		}
	}
}

func TestStructFloatAndPointerPrinting(t *testing.T) {
	src := `
struct point { int x; int y; };
struct point p;
double d;
float f;
char c;
short s;
unsigned u;
int *ip;
int target;
int main() {
	p.x = 3; p.y = 4;
	d = 2.5;
	f = 1.5;
	c = 'A';
	s = -7;
	u = 42;
	target = 9;
	ip = &target;
	return 0;
}
`
	var out strings.Builder
	d, err := New(&out)
	if err != nil {
		t.Fatal(err)
	}
	tgt := launch(t, d, "sparc", "vals.c", src)
	stops, _, err := tgt.ProcStops("main")
	if err != nil {
		t.Fatal(err)
	}
	// Break at the return (next-to-last stop).
	if _, err := tgt.BreakStop("main", stops[len(stops)-2].Index); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	cases := map[string]string{
		"p": "{x=3, y=4}",
		"d": "2.5",
		"f": "1.5",
		"c": "'A'",
		"s": "-7",
		"u": "42",
	}
	for name, want := range cases {
		if got := printOf(t, d, tgt, name); got != want {
			t.Errorf("print %s = %q, want %q", name, got, want)
		}
	}
	// A data pointer prints as hex; it must equal &target.
	e, err := tgt.Lookup("target")
	if err != nil {
		t.Fatal(err)
	}
	loc, err := tgt.WhereLoc(e)
	if err != nil {
		t.Fatal(err)
	}
	got := printOf(t, d, tgt, "ip")
	if !strings.HasPrefix(got, "0x") {
		t.Errorf("print ip = %q", got)
	}
	var want uint32
	for _, c := range got[2:] {
		want = want*16 + uint32(strings.IndexRune("0123456789abcdef", c))
	}
	if int64(want) != loc.Offset {
		t.Errorf("ip = %#x, &target = %#x", want, loc.Offset)
	}
}

func TestFunctionPointerPrintsName(t *testing.T) {
	// Printing the function name associated with a C function pointer
	// requires the loader table, accessed through the target object
	// (§7).
	src := `
int helper(int x) { return x; }
int (*fp)(int);
int main() { fp = &helper; return fp(1); }
`
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "vax", "fp.c", src)
	stops, _, err := tgt.ProcStops("main")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.BreakStop("main", stops[len(stops)-2].Index); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	if got := printOf(t, d, tgt, "fp"); got != "_helper" {
		t.Errorf("print fp = %q, want _helper", got)
	}
}

func TestTwoTargetsTwoArchitectures(t *testing.T) {
	// ldb can debug on multiple architectures simultaneously (§6);
	// switching targets rebinds the machine-dependent names (§5).
	var out strings.Builder
	d, err := New(&out)
	if err != nil {
		t.Fatal(err)
	}
	t1 := launch(t, d, "mips", "fib.c", fibC)
	t2 := launch(t, d, "sparc", "fib.c", fibC)

	for _, tgt := range []*Target{t1, t2} {
		d.Switch(tgt)
		// The machine-dependent dictionary is on the dictionary stack.
		v, ok := d.In.Lookup("Machine")
		if !ok || v.S != tgt.Arch.Name() {
			t.Fatalf("Machine = %v under %s", v, tgt.Arch.Name())
		}
		if _, err := tgt.BreakStop("fib", 7); err != nil {
			t.Fatal(err)
		}
		if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
			t.Fatalf("%v %v", ev, err)
		}
	}
	// Interleave inspection of both stopped targets.
	d.Switch(t1)
	v1 := printOf(t, d, t1, "i")
	d.Switch(t2)
	v2 := printOf(t, d, t2, "i")
	if v1 != "2" || v2 != "2" {
		t.Errorf("i on both targets = %q, %q", v1, v2)
	}
	// The same debugger session continues both to completion.
	for _, tgt := range []*Target{t1, t2} {
		d.Switch(tgt)
		if err := tgt.Bpts.RemoveAll(); err != nil {
			t.Fatal(err)
		}
		if ev, err := tgt.Continue(); err != nil || !ev.Exited {
			t.Fatalf("%v %v", ev, err)
		}
	}
}

func TestCrossEndianSessionsAgree(t *testing.T) {
	// §4.1: except for floating point, cross-debugging is free — the
	// same debugger code sees identical values on the little- and
	// big-endian MIPS.
	var out strings.Builder
	d, _ := New(&out)
	values := map[string][2]string{}
	for i, a := range []string{"mips", "mipsbe"} {
		tgt := launch(t, d, a, "fib.c", fibC)
		if _, err := tgt.BreakStop("fib", 7); err != nil {
			t.Fatal(err)
		}
		if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
			t.Fatalf("%v %v", ev, err)
		}
		for _, name := range []string{"i", "n", "a"} {
			v := values[name]
			v[i] = printOf(t, d, tgt, name)
			values[name] = v
		}
	}
	for name, v := range values {
		if v[0] != v[1] {
			t.Errorf("%s differs across byte orders: %q vs %q", name, v[0], v[1])
		}
	}
}

func TestLazyFetchMemoization(t *testing.T) {
	// §7: fetches from the target address space are performed only on
	// demand and at most once per symbol-table entry.
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "m68k", "fib.c", fibC)
	if _, err := tgt.BreakStop("fib", 7); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	printOf(t, d, tgt, "a")
	after1 := tgt.LazyFetches
	printOf(t, d, tgt, "a")
	printOf(t, d, tgt, "a")
	if tgt.LazyFetches != after1 {
		t.Errorf("lazy fetches grew from %d to %d on repeated prints", after1, tgt.LazyFetches)
	}
}

func TestDetachedReattachKeepsDebugging(t *testing.T) {
	// A new debugger instance picks up a target another ldb left
	// stopped (§4.2).
	prog, err := driver.Build([]driver.Source{{Name: "fib.c", Text: fibC}}, driver.Options{Arch: "mips", Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	p := link.NewProcess(prog.Image)
	n := nub.New(p)
	n.Start()

	c1, err := nub.Pair(n)
	if err != nil {
		t.Fatal(err)
	}
	var out1 strings.Builder
	d1, _ := New(&out1)
	t1, err := d1.AttachClient("first", c1, prog.LoaderPS)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t1.BreakProc("fib"); err != nil {
		t.Fatal(err)
	}
	if ev, err := t1.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	if err := t1.Detach(); err != nil {
		t.Fatal(err)
	}
	// A second ldb connects to the preserved state.
	c2, err := nub.Pair(n)
	if err != nil {
		t.Fatal(err)
	}
	var out2 strings.Builder
	d2, _ := New(&out2)
	t2, err := d2.AttachClient("second", c2, prog.LoaderPS)
	if err != nil {
		t.Fatal(err)
	}
	if got := printOf(t, d2, t2, "n"); got != "10" {
		t.Errorf("reattached print n = %q", got)
	}
	// The new debugger even knows about the planted breakpoint address
	// by resuming: the planted trap is still in text, so re-plant
	// bookkeeping: adopt by replanting is not possible (not a no-op);
	// instead, the second debugger continues past it by setting the pc.
	if err := t2.Bpts.AdoptPlanted(t2.Client.Last.PC, t2.Arch.NopInstr()); err != nil {
		t.Fatal(err)
	}
	if ev, err := t2.Continue(); err != nil {
		t.Fatal(err)
	} else if ev.Exited {
		// fib(10) with the breakpoint removed... it was planted at
		// fib's entry and we adopted+removed it, so the program runs
		// to completion.
		_ = ev
	}
}

func TestRegisterAccessThroughPS(t *testing.T) {
	// The per-architecture PostScript reads registers of the current
	// frame through the Reg operator.
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "sparc", "fib.c", fibC)
	if _, err := tgt.BreakStop("fib", 7); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	// %i6 (r30) is the frame pointer; it must equal the frame base.
	o, err := d.In.Eval("30 Reg")
	if err != nil {
		t.Fatal(err)
	}
	if uint32(o.I) != tgt.Frames[0].Base {
		t.Errorf("Reg 30 = %#x, frame base = %#x", o.I, tgt.Frames[0].Base)
	}
	// RegNames comes from the arch dictionary.
	names, ok := d.In.Lookup("RegNames")
	if !ok || names.Kind != ps.KArray {
		t.Fatalf("RegNames missing")
	}
}

func TestBreakLine(t *testing.T) {
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "mips", "fib.c", fibC)
	// Line 8 of fibC is the loop body a[i] = a[i-1] + a[i-2]. (Line 7,
	// the for clauses, would stop at the init where i is still 0.)
	addrs, err := tgt.BreakLine("fib.c", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) == 0 {
		t.Fatal("no breakpoints planted")
	}
	ev, err := tgt.ContinueToBreakpoint()
	if err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	if got := printOf(t, d, tgt, "i"); got != "2" {
		t.Errorf("i = %q at line 8", got)
	}
}

func TestBreakpointRequiresNop(t *testing.T) {
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "m68k", "fib.c", fibC)
	// Arbitrary text addresses don't hold stopping-point no-ops.
	err := tgt.Bpts.Plant(tgt.Client.Last.PC + 100)
	if err == nil {
		t.Fatal("planting off a stopping point must fail")
	}
}

func TestDAGDescribeFromFrame(t *testing.T) {
	var out strings.Builder
	d, _ := New(&out)
	tgt := launch(t, d, "mips", "fib.c", fibC)
	if _, err := tgt.BreakStop("fib", 7); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	desc := tgt.Frames[0].Describe()
	for _, want := range []string{"joined", "register", "alias", "wire", "_fib"} {
		if !strings.Contains(desc, want) {
			t.Errorf("DAG description missing %q:\n%s", want, desc)
		}
	}
}
