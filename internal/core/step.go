package core

import (
	"fmt"

	"ldb/internal/arch"
	"ldb/internal/nub"
	"ldb/internal/ps"
)

// This file implements the §7.1 extensions built ON TOP of the
// breakpoint primitive: source-level single stepping (plant temporary
// breakpoints at stopping points, continue, remove) and an event-driven
// layer whose special case is the conditional breakpoint.

// allStopAddrs realizes the code address of every stopping point in
// the program (memoized per stop by stopLoc's replacement).
func (t *Target) allStopAddrs() ([]uint32, error) {
	if t.Degraded() {
		return nil, ErrNoSymbols
	}
	t.ensureCurrent()
	procs, ok := t.Table.Top.GetName("procs")
	if !ok || procs.Kind != ps.KArray {
		return nil, fmt.Errorf("core: no procs array")
	}
	var out []uint32
	for _, pref := range procs.A.E {
		if pref.Kind != ps.KName && pref.Kind != ps.KString {
			continue
		}
		info, err := t.Table.ProcInfo(pref.S)
		if err != nil {
			continue
		}
		stops, err := t.Table.Loci(info)
		if err != nil {
			return nil, err
		}
		for i := range stops {
			addr, err := t.stopLoc(&stops[i])
			if err != nil {
				return nil, err
			}
			out = append(out, addr)
		}
	}
	return out, nil
}

// Step resumes the target until the next stopping point, wherever it
// is: source-level single stepping implemented entirely with
// breakpoints (§7.1). Steps into calls and out of returns.
func (t *Target) Step() (*nub.Event, error) {
	addrs, err := t.allStopAddrs()
	if err != nil {
		return nil, err
	}
	var temps []uint32
	for _, a := range addrs {
		if !t.Bpts.IsPlanted(a) {
			temps = append(temps, a)
		}
	}
	// Plant every temporary in a couple of batched round trips instead
	// of two per stopping point; PlantMany rolls back on failure.
	if err := t.Bpts.PlantMany(temps); err != nil {
		return nil, err
	}
	ev, cerr := t.ContinueToBreakpoint()
	if err := t.Bpts.RemoveMany(temps); err != nil && cerr == nil {
		cerr = err
	}
	return ev, cerr
}

// stackDepth counts frames (bounded; deep recursion still compares
// correctly for Next's purposes).
func (t *Target) stackDepth() int {
	const limit = 64
	n := 0
	for i := 0; i < limit; i++ {
		f, err := t.Frame(i)
		if err != nil {
			break
		}
		n++
		if f.Proc() == "_start" {
			break
		}
	}
	return n
}

// isStopTrap reports a stop at a breakpoint trap (Step's temporaries
// are already removed when its event returns, so IsPlanted cannot be
// consulted here).
func isStopTrap(ev *nub.Event) bool {
	return !ev.Exited && ev.Sig == arch.SigTrap && ev.Code == arch.TrapBreakpoint
}

// Next is Step that treats calls as atomic: it keeps stepping while
// the stack is deeper than it was.
func (t *Target) Next() (*nub.Event, error) {
	start := t.stackDepth()
	for {
		ev, err := t.Step()
		if err != nil || ev.Exited {
			return ev, err
		}
		if !isStopTrap(ev) {
			return ev, nil // a real fault
		}
		if t.stackDepth() <= start {
			return ev, nil
		}
	}
}

// Finish steps until the current function returns (the stack is
// shallower than at the start).
func (t *Target) Finish() (*nub.Event, error) {
	start := t.stackDepth()
	for {
		ev, err := t.Step()
		if err != nil || ev.Exited {
			return ev, err
		}
		if !isStopTrap(ev) {
			return ev, nil
		}
		if t.stackDepth() < start {
			return ev, nil
		}
	}
}

// EventHandler inspects a stop and decides whether the debugger keeps
// the target stopped (true) or resumes it (false). Making the
// debugger's internals event-driven subsumes conditional breakpoints
// as a special case (§7.1).
type EventHandler func(t *Target, ev *nub.Event) (stop bool, err error)

// RunEvents resumes the target repeatedly, calling h at every stop,
// until h asks to stop, the target exits, or a non-breakpoint fault
// arrives.
func (t *Target) RunEvents(h EventHandler) (*nub.Event, error) {
	for {
		ev, err := t.Continue()
		if err != nil || ev.Exited {
			return ev, err
		}
		if !t.Bpts.IsBreakpointSignal(ev) {
			return ev, nil
		}
		stop, err := h(t, ev)
		if err != nil {
			return ev, err
		}
		if stop {
			return ev, nil
		}
	}
}

// SetCondition attaches a C expression to a planted breakpoint: the
// target stops there only when the expression is non-zero. An empty
// condition clears it.
func (t *Target) SetCondition(addr uint32, cond string) {
	if t.conds == nil {
		t.conds = make(map[uint32]string)
	}
	if cond == "" {
		delete(t.conds, addr)
		return
	}
	t.conds[addr] = cond
}

// BreakStopIf plants a conditional breakpoint at a stopping point.
func (t *Target) BreakStopIf(proc string, index int, cond string) (uint32, error) {
	addr, err := t.BreakStop(proc, index)
	if err != nil {
		return 0, err
	}
	t.SetCondition(addr, cond)
	return addr, nil
}

// ContinueConditional resumes, honoring breakpoint conditions: it is
// RunEvents with the condition-evaluating handler.
func (t *Target) ContinueConditional() (*nub.Event, error) {
	return t.RunEvents(func(t *Target, ev *nub.Event) (bool, error) {
		cond, ok := t.conds[ev.PC]
		if !ok {
			return true, nil
		}
		v, err := t.EvalInt(cond)
		if err != nil {
			return true, fmt.Errorf("core: breakpoint condition %q: %w", cond, err)
		}
		return v != 0, nil
	})
}

// RecoverBreakpoints adopts breakpoints planted by a previous debugger
// instance, using the enriched nub protocol (§7.1).
func (t *Target) RecoverBreakpoints() ([]uint32, error) {
	return t.Bpts.Recover()
}
