package core

import (
	"fmt"

	"ldb/internal/amem"
	"ldb/internal/arch"
	"ldb/internal/ps"
	"ldb/internal/symtab"
)

// callConv describes, as machine-dependent data, how ldb synthesizes a
// procedure call in a stopped target (§7.1's future work: "expressions
// that include procedure calls"). The machine-independent caller below
// needs only these three items per target — the same design as the
// four items of breakpoint data (§3).
type callConv struct {
	// RetOnStack says the return address is pushed at the new sp (the
	// 68020's jsr and the VAX's jsb); otherwise it goes in the link
	// register.
	RetOnStack bool
	// LinkAdjust is subtracted from the return address placed in the
	// link register (the SPARC returns with jmpl %o7+4).
	LinkAdjust int64
	// ArgBase is the offset from the new sp to the first argument word.
	ArgBase int64
}

var callConvs = map[string]callConv{
	"mips":   {},
	"mipsbe": {},
	"sparc":  {LinkAdjust: 4},
	"m68k":   {RetOnStack: true, ArgBase: 4},
	"vax":    {RetOnStack: true, ArgBase: 4},
}

// scratchBytes is how far below the current sp the synthetic frame is
// built, clearing anything the stopped procedure may address below its
// own sp (the MIPS outgoing-argument area is at sp+0).
const scratchBytes = 256

// CallProc calls a procedure in the target process and returns its
// result — the §7.1 extension the paper's prototype lacked. The target
// must be stopped. Arguments must be word-sized integers (ints,
// pointers as addresses); the return value follows the procedure's
// declared type: an integer, a real, or null for void.
//
// The call runs on a scratch stack below the stopped frame, returns to
// a temporary trap at the current pc, and the entire context record is
// restored afterward, so the interrupted session resumes exactly where
// it was. If the called procedure hits a user breakpoint or faults, the
// call is abandoned, the state is restored, and an error reports the
// stop.
func (t *Target) CallProc(name string, args ...int64) (ps.Object, error) {
	if t.Exited {
		return ps.Object{}, fmt.Errorf("core: %s has exited", t.Name)
	}
	if !t.Stopped() {
		return ps.Object{}, fmt.Errorf("core: target is not stopped")
	}
	conv, ok := callConvs[t.Arch.Name()]
	if !ok {
		return ps.Object{}, fmt.Errorf("core: no call convention for %s", t.Arch.Name())
	}
	if t.Degraded() {
		return ps.Object{}, ErrNoSymbols
	}
	e, entryName, ok := t.Table.ProcEntryByName(name)
	if !ok {
		return ps.Object{}, fmt.Errorf("core: no procedure %q", name)
	}
	addr, err := t.procAddr(e)
	if err != nil {
		return ps.Object{}, err
	}
	if n, err := t.checkFormals(entryName, len(args)); err != nil {
		return ps.Object{}, err
	} else if n != len(args) {
		return ps.Object{}, fmt.Errorf("core: %s takes %d arguments, got %d", name, n, len(args))
	}
	retKind, err := t.returnKind(e)
	if err != nil {
		return ps.Object{}, err
	}

	layout := t.Arch.Context()
	ctx := t.FInfo.Ctx
	c := t.Client

	// Snapshot the complete context record; restoring it afterward puts
	// every register — pc, sp, flags, floats — back.
	saved, err := c.FetchBytes(amem.Data, ctx, layout.Size)
	if err != nil {
		return ps.Object{}, err
	}
	pc64, err := c.FetchInt(amem.Data, ctx+uint32(layout.PCOff), 4)
	if err != nil {
		return ps.Object{}, err
	}
	sp64, err := c.FetchInt(amem.Data, ctx+uint32(layout.RegOffs[t.Arch.SPReg()]), 4)
	if err != nil {
		return ps.Object{}, err
	}
	retAddr, sp := uint32(pc64), uint32(sp64)

	// The callee returns to the current pc, where a trap awaits. If a
	// breakpoint is already planted there the trap exists; otherwise a
	// temporary one is stored directly (and removed afterward).
	trap := t.Arch.BreakInstr()
	oldInstr, err := c.FetchBytes(amem.Code, retAddr, len(trap))
	if err != nil {
		return ps.Object{}, err
	}
	planted := string(oldInstr) == string(trap)
	if !planted {
		if err := c.StoreBytes(amem.Code, retAddr, trap); err != nil {
			return ps.Object{}, err
		}
	}
	curFrame := t.CurFrame
	restore := func() error {
		if !planted {
			if err := c.StoreBytes(amem.Code, retAddr, oldInstr); err != nil {
				return err
			}
		}
		if err := c.StoreBytes(amem.Data, ctx, saved); err != nil {
			return err
		}
		if err := t.Refresh(); err != nil {
			return err
		}
		if curFrame > 0 {
			// Keep the user's selected frame (an expression may combine a
			// call with locals of an outer frame).
			return t.SelectFrame(curFrame)
		}
		return nil
	}

	// Build the synthetic frame on scratch stack below the stopped one.
	newSP := (sp - scratchBytes - uint32(4*len(args)+8)) &^ 7
	if conv.RetOnStack {
		if err := c.StoreInt(amem.Data, newSP, 4, uint64(retAddr)); err != nil {
			return ps.Object{}, err
		}
	}
	for i, a := range args {
		off := newSP + uint32(conv.ArgBase) + uint32(4*i)
		if err := c.StoreInt(amem.Data, off, 4, uint64(uint32(a))); err != nil {
			return ps.Object{}, err
		}
	}
	// The context stores go out in a fixed order: they ride the wire
	// one request each, and the deterministic fault injector schedules
	// drops by byte count — request order must not vary between runs
	// (this was a map until the detstate analyzer flagged the range).
	stores := []struct {
		off int
		val uint64
	}{
		{layout.PCOff, uint64(addr)},
		{layout.RegOffs[t.Arch.SPReg()], uint64(newSP)},
	}
	if !conv.RetOnStack {
		stores = append(stores, struct {
			off int
			val uint64
		}{layout.RegOffs[t.Arch.LinkReg()], uint64(retAddr - uint32(conv.LinkAdjust))})
	}
	for _, st := range stores {
		if err := c.StoreInt(amem.Data, ctx+uint32(st.off), 4, st.val); err != nil {
			return ps.Object{}, err
		}
	}

	ev, err := c.Continue()
	if err != nil {
		return ps.Object{}, err
	}
	if ev.Exited {
		t.Exited, t.ExitStatus = true, ev.Status
		return ps.Object{}, fmt.Errorf("core: target exited with status %d during call", ev.Status)
	}
	// A genuine return traps at the return address with the synthetic
	// frame popped (sp back at or above newSP). A stop anywhere else —
	// including at a user breakpoint that happens to share the return
	// address because the callee re-entered the interrupted procedure —
	// leaves the callee's frame below newSP and aborts the call.
	returned := (t.Bpts.IsBreakpointSignal(ev) || isStopTrap(ev)) && ev.PC == retAddr
	if returned {
		spAfter, err := c.FetchInt(amem.Data, ctx+uint32(layout.RegOffs[t.Arch.SPReg()]), 4)
		if err != nil {
			return ps.Object{}, err
		}
		returned = uint32(spAfter) >= newSP
	}
	if !returned {
		stop := fmt.Errorf("core: %s stopped at %v instead of returning", name, ev)
		if rerr := restore(); rerr != nil {
			return ps.Object{}, fmt.Errorf("%v; restore failed: %v", stop, rerr)
		}
		return ps.Object{}, stop
	}

	// Read the result out of the freshly saved context, then restore.
	var result ps.Object
	switch retKind {
	case "void":
		result = ps.Null()
	case "float":
		v, err := t.readCtxFloat(ctx, layout)
		if err != nil {
			result = ps.Object{}
		} else {
			result = ps.Real(v)
		}
	default:
		v, err := c.FetchInt(amem.Data, ctx+uint32(layout.RegOffs[t.Arch.RetReg()]), 4)
		if err != nil {
			result = ps.Object{}
		} else {
			result = ps.Int(amem.SignExtend(v, 4))
		}
	}
	if err := restore(); err != nil {
		return ps.Object{}, err
	}
	return result, nil
}

// CallInt calls a procedure expecting an integer result.
func (t *Target) CallInt(name string, args ...int64) (int64, error) {
	o, err := t.CallProc(name, args...)
	if err != nil {
		return 0, err
	}
	if o.Kind != ps.KInt {
		return 0, fmt.Errorf("core: %s returned %s", name, o.TypeName())
	}
	return o.I, nil
}

// procAddr resolves a procedure entry's code address via its where
// procedure ({ (label) GlobalCode }) and the loader table, or from the
// realized location if the where has already been memoized (§5).
func (t *Target) procAddr(e symtab.Entry) (uint32, error) {
	w, ok := e.D.GetName("where")
	switch {
	case ok && w.Kind == ps.KArray && len(w.A.E) == 2 &&
		isName(w.A.E[1], "GlobalCode") && w.A.E[0].Kind == ps.KString:
		if t.Table != nil {
			if a, err := t.Table.GlobalAddr(w.A.E[0].S); err == nil {
				return a, nil
			}
		}
		return 0, fmt.Errorf("core: %s not in the loader table", w.A.E[0].S)
	case ok && w.Kind == ps.KExt:
		if lx, ok := w.X.(*LocExt); ok && lx.Loc.Space == amem.Code && lx.Loc.Mode == amem.Absolute {
			return uint32(lx.Loc.Offset), nil
		}
	}
	return 0, fmt.Errorf("core: entry %s has no code address", e.Name())
}

// checkFormals counts a procedure's parameters (walking the uplink
// chain from the formals reference) and requires each to be one word.
func (t *Target) checkFormals(entryName string, _ int) (int, error) {
	info, err := t.Table.ProcInfo(entryName)
	if err != nil {
		return 0, err
	}
	f, ok := info.GetName("formals")
	if !ok || f.Kind == ps.KNull {
		return 0, nil
	}
	d, err := t.Table.EntryRef(f)
	if err != nil || d == nil {
		return 0, fmt.Errorf("core: bad formals reference: %v", err)
	}
	n := 0
	for e := (symtab.Entry{D: d, T: t.Table}); e.Kind() == "parameter"; {
		if td := e.TypeDict(); td != nil {
			if _, isF := td.GetName("fsize"); isF {
				return 0, fmt.Errorf("core: parameter %s is floating-point (unsupported in calls)", e.Name())
			}
			if sz, ok := td.GetName("size"); ok && sz.I != 4 {
				return 0, fmt.Errorf("core: parameter %s is not one word", e.Name())
			}
		}
		n++
		up, ok := e.Uplink()
		if !ok {
			break
		}
		e = up
	}
	return n, nil
}

// returnKind classifies a procedure's return type from its type
// dictionary: "void", "float", or "int".
func (t *Target) returnKind(e symtab.Entry) (string, error) {
	td := e.TypeDict()
	if td == nil {
		return "int", nil
	}
	bt, ok := td.GetName("&basetype")
	if !ok || bt.Kind != ps.KDict {
		return "int", nil
	}
	if _, ok := bt.D.GetName("fsize"); ok {
		return "float", nil
	}
	if sz, ok := bt.D.GetName("size"); ok && sz.I == 0 {
		return "void", nil
	}
	return "int", nil
}

// readCtxFloat reads floating register 0 from the saved context record,
// honoring the per-target image size and the big-endian MIPS kernel's
// word-swap quirk (§4.3 footnote).
func (t *Target) readCtxFloat(ctx uint32, layout arch.ContextLayout) (float64, error) {
	if len(layout.FRegOffs) == 0 {
		return 0, fmt.Errorf("core: %s saves no floating registers", t.Arch.Name())
	}
	img, err := t.Client.FetchBytes(amem.Data, ctx+uint32(layout.FRegOffs[0]), layout.FRegSize)
	if err != nil {
		return 0, err
	}
	order := t.Arch.Order()
	if layout.FRegSize == 12 {
		return amem.DecodeFloat(order, img, amem.Float80), nil
	}
	if layout.FloatWordSwap {
		for i := 0; i < 4; i++ {
			img[i], img[i+4] = img[i+4], img[i]
		}
	}
	return amem.DecodeFloat(order, img, amem.Float64), nil
}
