package core

import (
	"fmt"
	"io"
	"strings"

	"ldb/internal/amem"
	"ldb/internal/codegen"
	"ldb/internal/expr"
	"ldb/internal/ps"
	"ldb/internal/symtab"
)

// exprSession holds the two pipes to a target's expression server
// (Fig. 3): expressions and lookup replies go down reqW; PostScript
// comes back through psFile, which ldb listens to with "cvx stopped".
type exprSession struct {
	reqW   io.Writer
	psFile ps.Object
}

// exprSessionFor starts (once) the expression server for a target — a
// variant of the compiler front end in its own goroutine, standing in
// for the paper's separate address space (§3).
func (t *Target) exprSessionFor() *exprSession {
	if t.exprS != nil {
		return t.exprS
	}
	reqR, reqW := io.Pipe()
	psR, psW := io.Pipe()
	tc := codegen.NewEmitterFor(t.Arch).Conf()
	srv := expr.NewServer(tc, reqR, psW)
	go srv.Serve()
	var down io.Writer = reqW
	var up io.Reader = psR
	if t.exprTrace != nil {
		down = &traceWriter{w: reqW, dir: "ldb → server:", fn: t.exprTrace}
		up = &traceReader{r: psR, dir: "server → ldb:", fn: t.exprTrace}
	}
	t.exprS = &exprSession{
		reqW:   down,
		psFile: ps.FileObj(&ps.File{Name: "exprserver", R: up}),
	}
	return t.exprS
}

// TraceExprTraffic installs fn to observe every message on the two
// expression-server pipes of Fig. 3. It must be called before the
// target's first Eval; the returned function uninstalls the trace for
// future sessions (the current session keeps its pipes).
func (t *Target) TraceExprTraffic(fn func(dir, line string)) func() {
	t.exprTrace = fn
	return func() { t.exprTrace = nil }
}

type traceWriter struct {
	w   io.Writer
	dir string
	fn  func(dir, line string)
}

func (tw *traceWriter) Write(p []byte) (int, error) {
	tw.fn(tw.dir, string(p))
	return tw.w.Write(p)
}

type traceReader struct {
	r   io.Reader
	dir string
	fn  func(dir, line string)
}

func (tr *traceReader) Read(p []byte) (int, error) {
	n, err := tr.r.Read(p)
	if n > 0 {
		tr.fn(tr.dir, string(p[:n]))
	}
	return n, err
}

// Eval sends an expression (or assignment) to the expression server,
// then interprets PostScript from the pipe until the server says to
// stop, and finally interprets the resulting procedure, which evaluates
// the expression against the current frame (§3).
func (t *Target) Eval(text string) (ps.Object, error) {
	t.ensureCurrent()
	d := t.D
	if strings.ContainsAny(text, "\n\r") {
		return ps.Object{}, fmt.Errorf("core: expressions must be a single line")
	}
	fresh := t.exprS == nil
	es := t.exprSessionFor()
	d.exprErr = ""
	// Frame-relative bindings in the server's type cache are only valid
	// at the stopping point and frame that produced them: tell the server
	// when the scope has moved so a shadowed local is looked up afresh.
	if scope := t.evalScope(); scope != t.exprScope {
		t.exprScope = scope
		if !fresh {
			if _, err := fmt.Fprintln(es.reqW, "newscope"); err != nil {
				return ps.Object{}, err
			}
		}
	}
	if _, err := fmt.Fprintf(es.reqW, "expr %s\n", text); err != nil {
		return ps.Object{}, err
	}
	// "The operation of interpreting until told to stop is implemented
	// by applying cvx stopped to the open pipe from the server."
	before := len(d.In.Stack)
	d.In.Push(es.psFile)
	if err := d.In.RunString("cvx stopped"); err != nil {
		return ps.Object{}, err
	}
	stopped, err := d.In.PopBool("expression listener")
	if err != nil {
		return ps.Object{}, err
	}
	if d.exprErr != "" {
		d.In.Stack = d.In.Stack[:before]
		return ps.Object{}, fmt.Errorf("core: %s", d.exprErr)
	}
	if !stopped {
		return ps.Object{}, fmt.Errorf("core: expression server closed the pipe")
	}
	proc, err := d.In.Pop()
	if err != nil {
		return ps.Object{}, err
	}
	if err := d.In.ExecProc(proc); err != nil {
		return ps.Object{}, err
	}
	return d.In.Pop()
}

// evalScope identifies the current resolution scope: the pc of the
// selected frame plus its depth. Locals resolve identically for as long
// as this value is unchanged.
func (t *Target) evalScope() uint64 {
	if len(t.Frames) == 0 || t.CurFrame >= len(t.Frames) {
		return 0
	}
	f := t.Frames[t.CurFrame]
	return uint64(f.PC)<<32 | uint64(uint32(t.CurFrame))
}

// EvalInt evaluates an expression expecting an integer result.
func (t *Target) EvalInt(text string) (int64, error) {
	o, err := t.Eval(text)
	if err != nil {
		return 0, err
	}
	if o.Kind == ps.KReal {
		return int64(o.R), nil
	}
	if o.Kind != ps.KInt {
		return 0, fmt.Errorf("core: expression yielded %s", o.TypeName())
	}
	return o.I, nil
}

// EvalFloat evaluates an expression expecting a numeric result.
func (t *Target) EvalFloat(text string) (float64, error) {
	o, err := t.Eval(text)
	if err != nil {
		return 0, err
	}
	if !o.IsNumber() {
		return 0, fmt.Errorf("core: expression yielded %s", o.TypeName())
	}
	return o.Num(), nil
}

// registerExprOps installs the two operators the expression-server
// protocol needs on the debugger side.
func (d *Debugger) registerExprOps() {
	// ExpressionServer.lookup: the server could not find an identifier;
	// find its symbol-table entry and send the information back as a
	// sequence of C tokens plus a location description (§3).
	d.In.Register("ExpressionServer.lookup", func(in *ps.Interp) error {
		name, err := in.PopName("ExpressionServer.lookup")
		if err != nil {
			return err
		}
		t := d.cur
		if t == nil || t.exprS == nil {
			return &ps.Error{Name: "notarget", Cmd: "ExpressionServer.lookup"}
		}
		reply := "nosym"
		if e, err := t.Lookup(name); err == nil {
			if desc, derr := t.whereDesc(e); derr == nil {
				decl := t.fullDecl(e)
				reply = fmt.Sprintf("sym %s ; %s", desc, decl)
			}
		}
		_, err = fmt.Fprintf(t.exprS.reqW, "%s\n", reply)
		return err
	})
	// TargetCall: n arg1..argn (name) → result. Runs a procedure in the
	// target process for a call inside an expression (§7.1).
	d.In.Register("TargetCall", func(in *ps.Interp) error {
		name, err := in.PopString("TargetCall")
		if err != nil {
			return err
		}
		n, err := in.PopInt("TargetCall")
		if err != nil {
			return err
		}
		args := make([]int64, n)
		for i := int(n) - 1; i >= 0; i-- {
			v, err := in.PopInt("TargetCall")
			if err != nil {
				return err
			}
			args[i] = v
		}
		t := d.cur
		if t == nil {
			return &ps.Error{Name: "notarget", Cmd: "TargetCall"}
		}
		res, err := t.CallProc(name, args...)
		if err != nil {
			return &ps.Error{Name: "targetcall", Cmd: err.Error()}
		}
		in.Push(res)
		return nil
	})
	d.In.Register("ExpressionServer.failed", func(in *ps.Interp) error {
		msg, err := in.PopString("ExpressionServer.failed")
		if err != nil {
			return err
		}
		d.exprErr = msg
		return in.RunString("stop")
	})
}

// whereDesc classifies an entry's where procedure for the wire.
func (t *Target) whereDesc(e symtab.Entry) (string, error) {
	w, ok := e.D.GetName("where")
	if !ok {
		return "", fmt.Errorf("no location")
	}
	if w.Kind == ps.KExt {
		if lx, ok := w.X.(*LocExt); ok {
			loc := lx.Loc
			if loc.Mode == amem.Immediate {
				return fmt.Sprintf("absolute d %d", int64(loc.Imm)), nil
			}
			return fmt.Sprintf("absolute %s %d", loc.Space, loc.Offset), nil
		}
	}
	if w.Kind == ps.KArray {
		el := w.A.E
		switch {
		case len(el) == 2 && isName(el[1], "FrameOffset") && el[0].Kind == ps.KInt:
			return fmt.Sprintf("frame %d", el[0].I), nil
		case len(el) == 3 && isName(el[2], "LazyData") && el[0].Kind == ps.KString && el[1].Kind == ps.KInt:
			return fmt.Sprintf("anchor %s %d", el[0].S, el[1].I), nil
		case len(el) == 2 && isName(el[1], "GlobalData") && el[0].Kind == ps.KString:
			return "global " + el[0].S, nil
		case len(el) == 2 && isName(el[1], "GlobalCode") && el[0].Kind == ps.KString:
			return "code " + el[0].S, nil
		}
	}
	// Fall back: evaluate the where procedure now and send the
	// absolute location.
	o, err := t.D.evalWhere(w)
	if err != nil {
		return "", err
	}
	loc := o.X.(*LocExt).Loc
	return fmt.Sprintf("absolute %s %d", loc.Space, loc.Offset), nil
}

func isName(o ps.Object, s string) bool {
	return o.Kind == ps.KName && o.S == s
}

// fullDecl renders an entry's declaration as parseable C, expanding
// struct bodies from the type dictionaries (the paper's symbol tables
// carry enough information to let the server reconstruct the
// compiler's type information, §7).
func (t *Target) fullDecl(e symtab.Entry) string {
	td := e.TypeDict()
	if td == nil {
		return "int " + e.Name()
	}
	return t.cdecl(td, e.Name(), 0)
}

// tableFields fetches a type's /&fields through the symbol table's
// memoizing accessor, or reports ErrNoSymbols in machine-level mode.
func (t *Target) tableFields(td *ps.Dict) (ps.Object, error) {
	if t.Degraded() {
		return ps.Object{}, ErrNoSymbols
	}
	return t.Table.GetMemo(td, "&fields")
}

func (t *Target) cdecl(td *ps.Dict, inner string, depth int) string {
	kind := ""
	if k, ok := td.GetName("kind"); ok {
		kind = k.S
	}
	declTemplate := func() string {
		if v, ok := td.GetName("decl"); ok {
			return strings.Replace(v.S, "%s", inner, 1)
		}
		return "int " + inner
	}
	if depth > 4 {
		return "void *" + inner
	}
	switch kind {
	case "struct", "union":
		var b strings.Builder
		b.WriteString(kind + " { ")
		if fo, err := t.tableFields(td); err == nil && fo.Kind == ps.KArray {
			for _, f := range fo.A.E {
				if f.Kind != ps.KArray || len(f.A.E) != 3 {
					continue
				}
				fname := f.A.E[0].S
				ftd := f.A.E[2].D
				if ftd == nil {
					continue
				}
				b.WriteString(t.cdecl(ftd, fname, depth+1))
				b.WriteString("; ")
			}
		}
		b.WriteString("} ")
		b.WriteString(inner)
		return b.String()
	case "pointer":
		if bt, ok := td.GetName("&basetype"); ok && bt.Kind == ps.KDict {
			bk, _ := bt.D.GetName("kind")
			in := "*" + inner
			if bk.S == "array" || bk.S == "function" {
				in = "(" + in + ")"
			}
			return t.cdecl(bt.D, in, depth+1)
		}
		return declTemplate()
	case "array":
		if et, ok := td.GetName("&elemtype"); ok && et.Kind == ps.KDict {
			n := int64(0)
			if av, ok := td.GetName("&arraysize"); ok {
				n = av.I
			}
			return t.cdecl(et.D, fmt.Sprintf("%s[%d]", inner, n), depth+1)
		}
		return declTemplate()
	default:
		return declTemplate()
	}
}
