// Package bpt implements ldb's interim breakpoint scheme (§3): a
// breakpoint is planted by overwriting an instruction with the trap
// pattern; because lcc puts a no-op at every stopping point, resuming
// needs no single-stepping — the no-op is "interpreted" out of line by
// advancing the program counter. The implementation is
// machine-independent but manipulates four items of machine-dependent
// data: the break and no-op bit patterns, the width used to fetch and
// store instructions, and the amount to advance the pc.
//
// Everything happens through ordinary fetches and stores over the nub
// protocol; the protocol itself never mentions breakpoints (§6).
package bpt

import (
	"bytes"
	"fmt"
	"slices"

	"ldb/internal/amem"
	"ldb/internal/arch"
	"ldb/internal/nub"
)

// Manager plants and removes breakpoints in one target.
type Manager struct {
	A arch.Arch
	C *nub.Client

	planted map[uint32][]byte // address → overwritten bytes
	raw     map[uint32]bool   // planted over a real instruction, not a no-op
}

// New returns a breakpoint manager.
func New(a arch.Arch, c *nub.Client) *Manager {
	return &Manager{A: a, C: c, planted: make(map[uint32][]byte), raw: make(map[uint32]bool)}
}

// Plant sets a breakpoint at addr, which must hold a stopping-point
// no-op (the interim scheme can set breakpoints only at no-ops, which
// are skipped instead of interpreted, §3).
func (m *Manager) Plant(addr uint32) error {
	if _, dup := m.planted[addr]; dup {
		return nil
	}
	size := m.A.InstrSize()
	old, err := m.C.FetchBytes(amem.Code, addr, size)
	if err != nil {
		return err
	}
	if !bytes.Equal(old, m.A.NopInstr()) {
		return fmt.Errorf("bpt: %#x does not hold a stopping-point no-op", addr)
	}
	// Plant through the special store of §7.1's enriched protocol, so
	// the nub, too, records the overwritten instruction and can report
	// it to a new debugger if this one is lost.
	if err := m.C.PlantStore(addr, m.A.BreakInstr()); err != nil {
		return err
	}
	m.planted[addr] = old
	return nil
}

// PlantRaw sets a breakpoint at an arbitrary instruction — the
// machine-level form used when no symbol table marks the stopping-point
// no-ops. Unlike Plant, the overwritten instruction cannot be skipped
// on resume; the resumer must restore it, retire it with a single
// machine step, and replant (IsRaw tells the two kinds apart).
func (m *Manager) PlantRaw(addr uint32) error {
	if _, dup := m.planted[addr]; dup {
		return nil
	}
	old, err := m.C.FetchBytes(amem.Code, addr, m.A.InstrSize())
	if err != nil {
		return err
	}
	if err := m.C.PlantStore(addr, m.A.BreakInstr()); err != nil {
		return err
	}
	m.planted[addr] = old
	if !bytes.Equal(old, m.A.NopInstr()) {
		m.raw[addr] = true
	}
	return nil
}

// IsRaw reports whether the breakpoint at addr overwrote a real
// instruction rather than a stopping-point no-op.
func (m *Manager) IsRaw(addr uint32) bool { return m.raw[addr] }

// PlantMany sets breakpoints at every address in addrs, batching the
// no-op checks into one round trip and the plants into another (§6's
// protocol carries them as ordinary fetches and special stores, so an
// MBatch envelope holds the lot). On any failure every breakpoint this
// call planted is removed again, so the set of planted breakpoints is
// unchanged by a failed call.
func (m *Manager) PlantMany(addrs []uint32) error {
	var fresh []uint32
	seen := make(map[uint32]bool)
	for _, a := range addrs {
		if _, dup := m.planted[a]; !dup && !seen[a] {
			fresh = append(fresh, a)
			seen[a] = true
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	size := m.A.InstrSize()
	fetch := m.C.NewBatch()
	olds := make([]*nub.BytesRes, len(fresh))
	for i, a := range fresh {
		olds[i] = fetch.FetchBytes(amem.Code, a, size)
	}
	if err := fetch.Run(); err != nil {
		return err
	}
	for i, r := range olds {
		if r.Err != nil {
			return r.Err
		}
		if !bytes.Equal(r.Data, m.A.NopInstr()) {
			return fmt.Errorf("bpt: %#x does not hold a stopping-point no-op", fresh[i])
		}
	}
	plant := m.C.NewBatch()
	oks := make([]*nub.OKRes, len(fresh))
	for i, a := range fresh {
		oks[i] = plant.PlantStore(a, m.A.BreakInstr())
	}
	runErr := plant.Run()
	var failed error
	for i, r := range oks {
		if runErr == nil && r.Err == nil {
			m.planted[fresh[i]] = append([]byte(nil), olds[i].Data...)
		} else if failed == nil {
			failed = r.Err
		}
	}
	if runErr != nil || failed != nil {
		// Roll back whatever did get planted so a partial failure
		// leaves the target as it was.
		for _, a := range fresh {
			if _, ok := m.planted[a]; ok {
				m.Remove(a)
			}
		}
		if runErr != nil {
			return runErr
		}
		return failed
	}
	return nil
}

// Remove clears the breakpoint at addr, restoring the no-op.
func (m *Manager) Remove(addr uint32) error {
	if _, ok := m.planted[addr]; !ok {
		return fmt.Errorf("bpt: no breakpoint at %#x", addr)
	}
	if err := m.C.UnplantStore(addr); err != nil {
		return err
	}
	delete(m.planted, addr)
	delete(m.raw, addr)
	return nil
}

// RemoveMany clears the breakpoints at every address in addrs in one
// batched round trip. Addresses with no planted breakpoint are an
// error, as with Remove.
func (m *Manager) RemoveMany(addrs []uint32) error {
	var unique []uint32
	seen := make(map[uint32]bool)
	for _, a := range addrs {
		if _, ok := m.planted[a]; !ok {
			return fmt.Errorf("bpt: no breakpoint at %#x", a)
		}
		if !seen[a] {
			unique = append(unique, a)
			seen[a] = true
		}
	}
	addrs = unique
	if len(addrs) == 0 {
		return nil
	}
	b := m.C.NewBatch()
	oks := make([]*nub.OKRes, len(addrs))
	for i, a := range addrs {
		oks[i] = b.UnplantStore(a)
	}
	if err := b.Run(); err != nil {
		return err
	}
	var failed error
	for i, r := range oks {
		if r.Err == nil {
			delete(m.planted, addrs[i])
			delete(m.raw, addrs[i])
		} else if failed == nil {
			failed = r.Err
		}
	}
	return failed
}

// RemoveAll clears every planted breakpoint.
func (m *Manager) RemoveAll() error {
	return m.RemoveMany(m.Addrs())
}

// AdoptPlanted records a breakpoint planted by a previous debugger
// instance; the caller supplies the instruction the trap replaced.
func (m *Manager) AdoptPlanted(addr uint32, original []byte) error {
	cur, err := m.C.FetchBytes(amem.Code, addr, m.A.InstrSize())
	if err != nil {
		return err
	}
	if !bytes.Equal(cur, m.A.BreakInstr()) {
		return fmt.Errorf("bpt: %#x holds no breakpoint", addr)
	}
	m.planted[addr] = append([]byte(nil), original...)
	if !bytes.Equal(original, m.A.NopInstr()) {
		m.raw[addr] = true
	}
	return nil
}

// Recover asks the nub which breakpoints a previous debugger planted
// (§7.1's enriched protocol) and adopts them all, returning their
// addresses.
func (m *Manager) Recover() ([]uint32, error) {
	records, err := m.C.ListPlanted()
	if err != nil {
		return nil, err
	}
	var out []uint32
	for _, r := range records {
		m.planted[r.Addr] = append([]byte(nil), r.Original...)
		if !bytes.Equal(r.Original, m.A.NopInstr()) {
			m.raw[r.Addr] = true
		}
		out = append(out, r.Addr)
	}
	return out, nil
}

// IsPlanted reports whether addr holds one of our breakpoints.
func (m *Manager) IsPlanted(addr uint32) bool {
	_, ok := m.planted[addr]
	return ok
}

// Addrs lists planted breakpoint addresses in ascending order. The
// order matters: RemoveAll feeds this list straight into unplant
// requests, and the deterministic fault injector schedules faults by
// byte count, so wire traffic must not vary with map iteration order.
func (m *Manager) Addrs() []uint32 {
	out := make([]uint32, 0, len(m.planted))
	for a := range m.planted {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}

// ResumePC returns the pc to continue from after stopping at a
// breakpoint: the overwritten no-op is interpreted out of line by
// skipping it.
func (m *Manager) ResumePC(pc uint32) uint32 {
	return pc + uint32(m.A.PCAdvance())
}

// IsBreakpointSignal is the machine-dependent predicate that
// distinguishes breakpoint faults from other faults (§4.3): a SIGTRAP
// whose code is the breakpoint trap code, at a planted address.
func (m *Manager) IsBreakpointSignal(ev *nub.Event) bool {
	return !ev.Exited && ev.Sig == arch.SigTrap && ev.Code == arch.TrapBreakpoint && m.IsPlanted(ev.PC)
}
