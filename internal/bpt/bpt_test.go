package bpt

import (
	"strings"
	"testing"

	"ldb/internal/amem"
	"ldb/internal/arch"
	"ldb/internal/driver"
	"ldb/internal/nub"
	"ldb/internal/workload"
)

// setup builds fib with -g and returns a manager plus the address of a
// stopping-point no-op.
func setup(t *testing.T, archName string) (*Manager, *nub.Client, uint32) {
	t.Helper()
	prog, err := driver.Build([]driver.Source{{Name: "fib.c", Text: workload.Fib}},
		driver.Options{Arch: archName, Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	client, _, _, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		t.Fatal(err)
	}
	var stop uint32
	for _, s := range prog.Image.Syms {
		if s.Name == ".stop_fib_7" {
			stop = s.Addr
		}
	}
	if stop == 0 {
		t.Fatal("no stop label")
	}
	return New(prog.Arch, client), client, stop
}

func TestPlantRemoveCycle(t *testing.T) {
	for _, a := range []string{"mips", "mipsbe", "sparc", "m68k", "vax"} {
		t.Run(a, func(t *testing.T) {
			m, c, stop := setup(t, a)
			if err := m.Plant(stop); err != nil {
				t.Fatal(err)
			}
			if !m.IsPlanted(stop) || len(m.Addrs()) != 1 {
				t.Fatal("not recorded")
			}
			// The trap pattern is in memory now.
			cur, err := c.FetchBytes(amem.Code, stop, m.A.InstrSize())
			if err != nil {
				t.Fatal(err)
			}
			if string(cur) != string(m.A.BreakInstr()) {
				t.Fatalf("memory holds % x", cur)
			}
			// Planting twice is idempotent.
			if err := m.Plant(stop); err != nil {
				t.Fatal(err)
			}
			// Removing restores the no-op.
			if err := m.Remove(stop); err != nil {
				t.Fatal(err)
			}
			cur, _ = c.FetchBytes(amem.Code, stop, m.A.InstrSize())
			if string(cur) != string(m.A.NopInstr()) {
				t.Fatalf("no-op not restored: % x", cur)
			}
			if err := m.Remove(stop); err == nil {
				t.Fatal("double remove succeeded")
			}
		})
	}
}

func TestPlantRequiresNop(t *testing.T) {
	m, _, stop := setup(t, "sparc")
	// The interim scheme can set breakpoints only at no-ops (§3).
	err := m.Plant(stop + 4)
	if err == nil || !strings.Contains(err.Error(), "no-op") {
		t.Fatalf("err = %v", err)
	}
}

func TestResumePCUsesPCAdvance(t *testing.T) {
	for _, name := range []string{"mips", "m68k", "vax"} {
		a, _ := arch.Lookup(name)
		m := &Manager{A: a}
		if got := m.ResumePC(0x1000); got != 0x1000+uint32(a.PCAdvance()) {
			t.Fatalf("%s: resume = %#x", name, got)
		}
	}
}

func TestHitAndResume(t *testing.T) {
	m, c, stop := setup(t, "vax")
	if err := m.Plant(stop); err != nil {
		t.Fatal(err)
	}
	ev, err := c.Continue()
	if err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
	if !m.IsBreakpointSignal(ev) {
		t.Fatalf("not classified as breakpoint: %v", ev)
	}
	if ev.PC != stop {
		t.Fatalf("stopped at %#x, want %#x", ev.PC, stop)
	}
	// Resume: interpret the no-op out of line by advancing the saved
	// pc, then continue; the next hit is the same breakpoint.
	l := m.A.Context()
	if err := c.StoreInt(amem.Data, c.CtxAddr+uint32(l.PCOff), 4, uint64(m.ResumePC(ev.PC))); err != nil {
		t.Fatal(err)
	}
	ev, err = c.Continue()
	if err != nil || ev.Exited || ev.PC != stop {
		t.Fatalf("second hit: %v %v", ev, err)
	}
}

func TestRemoveAllAndRecover(t *testing.T) {
	m, c, stop := setup(t, "mips")
	if err := m.Plant(stop); err != nil {
		t.Fatal(err)
	}
	// A second manager on the same connection can recover the plant
	// through the nub (§7.1).
	m2 := New(m.A, c)
	addrs, err := m2.Recover()
	if err != nil || len(addrs) != 1 || addrs[0] != stop {
		t.Fatalf("recover: %v %v", addrs, err)
	}
	if err := m2.RemoveAll(); err != nil {
		t.Fatal(err)
	}
	cur, _ := c.FetchBytes(amem.Code, stop, m.A.InstrSize())
	if string(cur) != string(m.A.NopInstr()) {
		t.Fatal("recover+remove did not restore the no-op")
	}
}

func TestFaultsAreNotBreakpoints(t *testing.T) {
	m, _, _ := setup(t, "m68k")
	ev := &nub.Event{Sig: arch.SigSegv, Code: 0, PC: 0x1234}
	if m.IsBreakpointSignal(ev) {
		t.Fatal("segv classified as breakpoint")
	}
	ev = &nub.Event{Sig: arch.SigTrap, Code: arch.TrapPause, PC: 0x1234}
	if m.IsBreakpointSignal(ev) {
		t.Fatal("pause classified as breakpoint")
	}
}

// Regression: Addrs once returned map-iteration order, so RemoveAll's
// unplant requests hit the wire in a different order each run — which
// desynchronized the deterministic fault injector's byte-count
// schedule. The list must come back sorted no matter the insertion
// order (the ldbvet detstate analyzer pinned this; keep it pinned).
func TestAddrsSortedRegardlessOfInsertionOrder(t *testing.T) {
	m := &Manager{planted: make(map[uint32][]byte)}
	// Descending insertion plus enough entries that an unsorted map walk
	// cannot plausibly come back ascending by accident.
	for i := 63; i >= 0; i-- {
		m.planted[0x1000+uint32(i)*4] = nil
	}
	addrs := m.Addrs()
	if len(addrs) != 64 {
		t.Fatalf("len = %d", len(addrs))
	}
	for i := 1; i < len(addrs); i++ {
		if addrs[i-1] >= addrs[i] {
			t.Fatalf("addrs not ascending at %d: %#x >= %#x", i, addrs[i-1], addrs[i])
		}
	}
}
