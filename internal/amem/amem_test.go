package amem

import (
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBufMemoryInt(t *testing.T) {
	for _, order := range []binary.ByteOrder{binary.BigEndian, binary.LittleEndian} {
		m := NewBufMemory(Data, order, 64)
		if err := m.StoreInt(Abs(Data, 8), Int32, 0x12345678); err != nil {
			t.Fatal(err)
		}
		v, err := m.FetchInt(Abs(Data, 8), Int32)
		if err != nil || v != 0x12345678 {
			t.Fatalf("fetch32 = %#x, %v", v, err)
		}
		if err := m.StoreInt(Abs(Data, 0), Int16, 0xbeef); err != nil {
			t.Fatal(err)
		}
		v, err = m.FetchInt(Abs(Data, 0), Int16)
		if err != nil || v != 0xbeef {
			t.Fatalf("fetch16 = %#x, %v", v, err)
		}
		if err := m.StoreInt(Abs(Data, 2), Int8, 0x7f); err != nil {
			t.Fatal(err)
		}
		v, err = m.FetchInt(Abs(Data, 2), Int8)
		if err != nil || v != 0x7f {
			t.Fatalf("fetch8 = %#x, %v", v, err)
		}
	}
}

func TestBufMemoryByteOrderMatters(t *testing.T) {
	// The raw bytes differ by order; the sub-byte view exposes it.
	be := NewBufMemory(Data, binary.BigEndian, 8)
	le := NewBufMemory(Data, binary.LittleEndian, 8)
	for _, m := range []*BufMemory{be, le} {
		if err := m.StoreInt(Abs(Data, 0), Int32, 0x11223344); err != nil {
			t.Fatal(err)
		}
	}
	if be.Data[0] != 0x11 || le.Data[0] != 0x44 {
		t.Fatalf("byte order not applied: be[0]=%#x le[0]=%#x", be.Data[0], le.Data[0])
	}
}

func TestBufMemoryErrors(t *testing.T) {
	m := NewBufMemory(Data, binary.BigEndian, 8)
	if _, err := m.FetchInt(Abs(Code, 0), Int32); !errors.Is(err, ErrBadSpace) {
		t.Fatalf("wrong space: %v", err)
	}
	if _, err := m.FetchInt(Abs(Data, 6), Int32); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out of range: %v", err)
	}
	if _, err := m.FetchInt(Abs(Data, -1), Int8); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative: %v", err)
	}
	if _, err := m.FetchInt(Abs(Data, 0), 3); !errors.Is(err, ErrBadSize) {
		t.Fatalf("bad size: %v", err)
	}
	if err := m.StoreInt(Imm(1), Int32, 0); !errors.Is(err, ErrImmStore) {
		t.Fatalf("imm store: %v", err)
	}
}

func TestBufMemoryBase(t *testing.T) {
	m := NewBufMemory(Data, binary.BigEndian, 16)
	m.Base = 0x1000
	if err := m.StoreInt(Abs(Data, 0x1004), Int32, 42); err != nil {
		t.Fatal(err)
	}
	v, err := m.FetchInt(Abs(Data, 0x1004), Int32)
	if err != nil || v != 42 {
		t.Fatalf("windowed fetch = %d, %v", v, err)
	}
	if _, err := m.FetchInt(Abs(Data, 0), Int32); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("below base: %v", err)
	}
}

func TestBufMemoryFloat(t *testing.T) {
	for _, order := range []binary.ByteOrder{binary.BigEndian, binary.LittleEndian} {
		m := NewBufMemory(Data, order, 64)
		if err := m.StoreFloat(Abs(Data, 0), Float64, 3.25); err != nil {
			t.Fatal(err)
		}
		v, err := m.FetchFloat(Abs(Data, 0), Float64)
		if err != nil || v != 3.25 {
			t.Fatalf("double = %g, %v", v, err)
		}
		if err := m.StoreFloat(Abs(Data, 8), Float32, 1.5); err != nil {
			t.Fatal(err)
		}
		v, err = m.FetchFloat(Abs(Data, 8), Float32)
		if err != nil || v != 1.5 {
			t.Fatalf("single = %g, %v", v, err)
		}
		if err := m.StoreFloat(Abs(Data, 16), Float80, -2.75); err != nil {
			t.Fatal(err)
		}
		v, err = m.FetchFloat(Abs(Data, 16), Float80)
		if err != nil || v != -2.75 {
			t.Fatalf("extended = %g, %v", v, err)
		}
	}
}

func TestFloat80RoundTrip(t *testing.T) {
	cases := []float64{0, 1, -1, 0.5, 3.14159265358979, 1e300, -1e-300, 12345.6789}
	for _, v := range cases {
		got := DecodeFloat80(EncodeFloat80(v))
		if got != v {
			t.Errorf("float80 round trip %g → %g", v, got)
		}
	}
	if !math.IsInf(DecodeFloat80(EncodeFloat80(math.Inf(1))), 1) {
		t.Error("+inf not preserved")
	}
	if !math.IsInf(DecodeFloat80(EncodeFloat80(math.Inf(-1))), -1) {
		t.Error("-inf not preserved")
	}
	if !math.IsNaN(DecodeFloat80(EncodeFloat80(math.NaN()))) {
		t.Error("nan not preserved")
	}
}

func TestFloat80RoundTripProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		return DecodeFloat80(EncodeFloat80(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestImmMemory(t *testing.T) {
	var m ImmMemory
	v, err := m.FetchInt(Imm(0x1234), Int16)
	if err != nil || v != 0x1234 {
		t.Fatalf("imm fetch = %#x, %v", v, err)
	}
	v, err = m.FetchInt(Imm(0x12345678), Int8)
	if err != nil || v != 0x78 {
		t.Fatalf("imm truncate = %#x, %v", v, err)
	}
	if _, err := m.FetchInt(Abs(Data, 0), Int32); !errors.Is(err, ErrBadSpace) {
		t.Fatalf("absolute in imm memory: %v", err)
	}
	if err := m.StoreInt(Imm(1), Int32, 0); !errors.Is(err, ErrImmStore) {
		t.Fatalf("store: %v", err)
	}
	fv, err := m.FetchFloat(ImmFloat(2.5), Float64)
	if err != nil || fv != 2.5 {
		t.Fatalf("imm float = %g, %v", fv, err)
	}
}

func TestAliasMemory(t *testing.T) {
	under := NewBufMemory(Data, binary.BigEndian, 128)
	al := NewAliasMemory(under)
	// Register 30 is saved 92 bytes after the beginning of the context
	// (the example in §4.1).
	al.Alias(Abs(Reg, 30), Abs(Data, 92))
	if err := under.StoreInt(Abs(Data, 92), Int32, 7); err != nil {
		t.Fatal(err)
	}
	v, err := al.FetchInt(Abs(Reg, 30), Int32)
	if err != nil || v != 7 {
		t.Fatalf("aliased fetch = %d, %v", v, err)
	}
	if err := al.StoreInt(Abs(Reg, 30), Int32, 9); err != nil {
		t.Fatal(err)
	}
	v, _ = under.FetchInt(Abs(Data, 92), Int32)
	if v != 9 {
		t.Fatalf("aliased store: underlying = %d", v)
	}
	// Extra registers alias immediate locations.
	al.Alias(Abs(Extra, 0), Imm(0x2270))
	v, err = al.FetchInt(Abs(Extra, 0), Int32)
	if err != nil || v != 0x2270 {
		t.Fatalf("immediate alias = %#x, %v", v, err)
	}
	if err := al.StoreInt(Abs(Extra, 0), Int32, 1); !errors.Is(err, ErrImmStore) {
		t.Fatalf("store through immediate alias: %v", err)
	}
	if _, err := al.FetchInt(Abs(Reg, 31), Int32); !errors.Is(err, ErrUnaliased) {
		t.Fatalf("unaliased: %v", err)
	}
}

func TestAliasList(t *testing.T) {
	al := NewAliasMemory(NewBufMemory(Data, binary.BigEndian, 8))
	al.Alias(Abs(Reg, 5), Abs(Data, 0))
	al.Alias(Abs(Reg, 1), Abs(Data, 4))
	al.Alias(Abs(Extra, 0), Imm(1))
	got := al.Aliases()
	if len(got) != 3 {
		t.Fatalf("Aliases len = %d", len(got))
	}
	// Deterministic order: by space, then offset.
	if got[0].From.Space != Reg || got[0].From.Offset != 1 {
		t.Fatalf("order: %v", got)
	}
	if got[2].From.Space != Extra {
		t.Fatalf("order: %v", got)
	}
}

// frameFor builds the abstract-memory DAG of Fig. 4 over a context
// stored in a buffer with the given byte order, and returns the joined
// memory plus the raw context.
func frameFor(order binary.ByteOrder) (*JoinedMemory, *BufMemory) {
	wire := NewBufMemory(Data, order, 256)
	wire.Label = "wire"
	alias := NewAliasMemory(wire)
	for r := int64(0); r < 32; r++ {
		alias.Alias(Abs(Reg, r), Abs(Data, 64+4*r))
	}
	alias.Alias(Abs(Extra, 0), Imm(0x2270)) // pc
	alias.Alias(Abs(Extra, 1), Imm(0x8000)) // virtual frame pointer
	regs := NewRegisterMemory(alias, 4)
	j := NewJoinedMemory()
	j.Route(Code, wire)
	j.Route(Data, wire)
	j.Route(Reg, regs)
	j.Route(Extra, regs)
	return j, wire
}

func TestRegisterMemoryByteOrderIrrelevant(t *testing.T) {
	// §4.1: register memories enable ldb to execute the same code
	// whether debugging a little-endian or a big-endian target. A
	// sub-word fetch from a register returns the least significant
	// bits on both.
	for _, order := range []binary.ByteOrder{binary.BigEndian, binary.LittleEndian} {
		j, _ := frameFor(order)
		if err := j.StoreInt(Abs(Reg, 30), Int32, 0x11223344); err != nil {
			t.Fatal(err)
		}
		b, err := j.FetchInt(Abs(Reg, 30), Int8)
		if err != nil || b != 0x44 {
			t.Fatalf("%v: low byte = %#x, %v", order, b, err)
		}
		h, err := j.FetchInt(Abs(Reg, 30), Int16)
		if err != nil || h != 0x3344 {
			t.Fatalf("%v: low half = %#x, %v", order, h, err)
		}
	}
}

func TestRegisterMemorySubWordStoreProperty(t *testing.T) {
	// Property: storing a byte into a register updates only the low 8
	// bits, independent of target byte order.
	f := func(initial uint32, b uint8) bool {
		for _, order := range []binary.ByteOrder{binary.BigEndian, binary.LittleEndian} {
			j, _ := frameFor(order)
			if err := j.StoreInt(Abs(Reg, 7), Int32, uint64(initial)); err != nil {
				return false
			}
			if err := j.StoreInt(Abs(Reg, 7), Int8, uint64(b)); err != nil {
				return false
			}
			v, err := j.FetchInt(Abs(Reg, 7), Int32)
			if err != nil {
				return false
			}
			want := (uint64(initial) &^ 0xff) | uint64(b)
			if v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoinedMemoryRouting(t *testing.T) {
	j, wire := frameFor(binary.BigEndian)
	// Data-space traffic goes straight to the wire.
	if err := j.StoreInt(Abs(Data, 16), Int32, 99); err != nil {
		t.Fatal(err)
	}
	v, _ := wire.FetchInt(Abs(Data, 16), Int32)
	if v != 99 {
		t.Fatalf("routed store missed the wire: %d", v)
	}
	// Extra registers fetch immediate values.
	pc, err := j.FetchInt(Abs(Extra, 0), Int32)
	if err != nil || pc != 0x2270 {
		t.Fatalf("pc = %#x, %v", pc, err)
	}
	// Unrouted space.
	if _, err := j.FetchInt(Abs(Float, 0), Int32); !errors.Is(err, ErrBadSpace) {
		t.Fatalf("unrouted: %v", err)
	}
	// Immediate fetch through the joined memory.
	v, err = j.FetchInt(Imm(5), Int32)
	if err != nil || v != 5 {
		t.Fatalf("imm through joined = %d, %v", v, err)
	}
	if err := j.StoreInt(Imm(5), Int32, 1); !errors.Is(err, ErrImmStore) {
		t.Fatalf("imm store through joined: %v", err)
	}
}

func TestCrossEndianSameValues(t *testing.T) {
	// The debugger-visible value of every register and variable is the
	// same regardless of target byte order — except for the raw wire
	// bytes, which differ. This is the crux of "cross-debugging is
	// free" (§4.1).
	jbe, wbe := frameFor(binary.BigEndian)
	jle, wle := frameFor(binary.LittleEndian)
	for _, j := range []*JoinedMemory{jbe, jle} {
		for r := int64(0); r < 32; r++ {
			if err := j.StoreInt(Abs(Reg, r), Int32, uint64(0x1000+r)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for r := int64(0); r < 32; r++ {
		a, _ := jbe.FetchInt(Abs(Reg, r), Int32)
		b, _ := jle.FetchInt(Abs(Reg, r), Int32)
		if a != b {
			t.Fatalf("reg %d differs across byte orders: %#x vs %#x", r, a, b)
		}
	}
	same := true
	for i := range wbe.Data {
		if wbe.Data[i] != wle.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("wire bytes identical across byte orders; context not byte-order-dependent")
	}
}

func TestShifted(t *testing.T) {
	l := Abs(Data, 100).Shifted(8)
	if l.Offset != 108 || l.Space != Data {
		t.Fatalf("shifted = %v", l)
	}
	i := Imm(10).Shifted(4)
	if i.Imm != 14 {
		t.Fatalf("shifted imm = %v", i)
	}
}

func TestSignExtend(t *testing.T) {
	if got := SignExtend(0xff, Int8); got != -1 {
		t.Fatalf("SignExtend(0xff,1) = %d", got)
	}
	if got := SignExtend(0x7f, Int8); got != 127 {
		t.Fatalf("SignExtend(0x7f,1) = %d", got)
	}
	if got := SignExtend(0xffff, Int16); got != -1 {
		t.Fatalf("SignExtend 16 = %d", got)
	}
	if got := SignExtend(0x80000000, Int32); got != math.MinInt32 {
		t.Fatalf("SignExtend 32 = %d", got)
	}
}

func TestDescribeDAG(t *testing.T) {
	j, _ := frameFor(binary.BigEndian)
	got := Describe(j)
	for _, want := range []string{"joined", "register", "alias", "wire"} {
		if !strings.Contains(got, want) {
			t.Fatalf("Describe missing %q:\n%s", want, got)
		}
	}
	// The wire serves both c/d directly and r via register→alias; it
	// must appear as shared, proving the structure is a DAG.
	if !strings.Contains(got, "(shared)") {
		t.Fatalf("Describe should show the shared wire:\n%s", got)
	}
}

func TestLocationString(t *testing.T) {
	if s := Abs(Reg, 30).String(); s != "r:30" {
		t.Fatalf("loc string = %q", s)
	}
	if s := Imm(7).String(); s != "#7" {
		t.Fatalf("imm string = %q", s)
	}
}

func TestImmMemoryFloatsAndName(t *testing.T) {
	var m ImmMemory
	if m.Name() != "immediate" {
		t.Fatal("name")
	}
	if err := m.StoreFloat(ImmFloat(1), Float64, 2); !errors.Is(err, ErrImmStore) {
		t.Fatalf("store float: %v", err)
	}
	if _, err := m.FetchFloat(Abs(Data, 0), Float64); !errors.Is(err, ErrBadSpace) {
		t.Fatalf("absolute float: %v", err)
	}
	if _, err := m.FetchFloat(ImmFloat(1), 5); !errors.Is(err, ErrBadSize) {
		t.Fatalf("bad size: %v", err)
	}
}

func TestAliasMemoryFloats(t *testing.T) {
	under := NewBufMemory(Data, binary.BigEndian, 64)
	al := NewAliasMemory(under)
	al.Alias(Abs(Float, 2), Abs(Data, 16))
	if err := al.StoreFloat(Abs(Float, 2), Float64, 6.5); err != nil {
		t.Fatal(err)
	}
	v, err := al.FetchFloat(Abs(Float, 2), Float64)
	if err != nil || v != 6.5 {
		t.Fatalf("%g %v", v, err)
	}
	// Immediate float aliases.
	al.Alias(Abs(Float, 3), ImmFloat(2.25))
	v, err = al.FetchFloat(Abs(Float, 3), Float64)
	if err != nil || v != 2.25 {
		t.Fatalf("imm alias: %g %v", v, err)
	}
	if err := al.StoreFloat(Abs(Float, 3), Float64, 1); !errors.Is(err, ErrImmStore) {
		t.Fatalf("store through imm alias: %v", err)
	}
	if _, err := al.FetchFloat(Abs(Float, 9), Float64); !errors.Is(err, ErrUnaliased) {
		t.Fatalf("unaliased float: %v", err)
	}
	// Joined memory float routing and imm passthrough.
	j := NewJoinedMemory()
	j.Route(Float, al)
	if _, ok := j.SpaceOf(Float); !ok {
		t.Fatal("SpaceOf")
	}
	v, err = j.FetchFloat(Abs(Float, 2), Float64)
	if err != nil || v != 6.5 {
		t.Fatalf("joined float: %g %v", v, err)
	}
	v, err = j.FetchFloat(ImmFloat(9.5), Float64)
	if err != nil || v != 9.5 {
		t.Fatalf("joined imm float: %g %v", v, err)
	}
	if err := j.StoreFloat(Abs(Float, 2), Float64, 7.5); err != nil {
		t.Fatal(err)
	}
	if err := j.StoreFloat(Abs(Reg, 2), Float64, 1); !errors.Is(err, ErrBadSpace) {
		t.Fatalf("unrouted: %v", err)
	}
}

func TestRegisterMemoryFloats(t *testing.T) {
	// Float traffic through a register memory passes straight to the
	// underlying memory (FP registers are not widened like the general
	// registers), but the size check still applies.
	under := NewBufMemory(Data, binary.LittleEndian, 64)
	al := NewAliasMemory(under)
	al.Alias(Abs(Float, 0), Abs(Data, 8))
	regs := NewRegisterMemory(al, 4)
	if err := regs.StoreFloat(Abs(Float, 0), Float64, -12.75); err != nil {
		t.Fatal(err)
	}
	v, err := regs.FetchFloat(Abs(Float, 0), Float64)
	if err != nil || v != -12.75 {
		t.Fatalf("%g %v", v, err)
	}
	if _, err := regs.FetchFloat(Abs(Float, 0), 7); !errors.Is(err, ErrBadSize) {
		t.Fatalf("fetch size check: %v", err)
	}
	if err := regs.StoreFloat(Abs(Float, 0), 7, 1); !errors.Is(err, ErrBadSize) {
		t.Fatalf("store size check: %v", err)
	}
}
