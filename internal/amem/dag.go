package amem

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

func math32frombits(u uint32) float32 { return math.Float32frombits(u) }
func math32bits(f float32) uint32     { return math.Float32bits(f) }
func math64frombits(u uint64) float64 { return math.Float64frombits(u) }
func math64bits(f float64) uint64     { return math.Float64bits(f) }

// ImmMemory serves only immediate locations. It backs the x space of a
// frame whose extra registers (program counter, virtual frame pointer)
// are aliases for immediate locations rather than target memory.
type ImmMemory struct{}

// Name implements Memory.
func (ImmMemory) Name() string { return "immediate" }

// FetchInt implements Memory.
func (ImmMemory) FetchInt(loc Location, size int) (uint64, error) {
	if err := checkIntSize(size); err != nil {
		return 0, err
	}
	if loc.Mode != Immediate {
		return 0, fmt.Errorf("%w: %s in immediate memory", ErrBadSpace, loc)
	}
	return truncInt(loc.Imm, size), nil
}

// StoreInt implements Memory.
func (ImmMemory) StoreInt(Location, int, uint64) error { return ErrImmStore }

// FetchFloat implements Memory.
func (ImmMemory) FetchFloat(loc Location, size int) (float64, error) {
	if err := checkFloatSize(size); err != nil {
		return 0, err
	}
	if loc.Mode != Immediate {
		return 0, fmt.Errorf("%w: %s in immediate memory", ErrBadSpace, loc)
	}
	return loc.ImmF, nil
}

// StoreFloat implements Memory.
func (ImmMemory) StoreFloat(Location, int, float64) error { return ErrImmStore }

// AliasMemory translates requests for locations in register spaces into
// requests on an underlying memory: registers saved in a context become
// data-space locations, and registers with known constant values (the
// extra registers) become immediate locations. Only the alias *data* is
// machine-dependent; the code is shared by every target (§4.1).
type AliasMemory struct {
	Under   Memory
	aliases map[aliasKey]Location
}

type aliasKey struct {
	space Space
	off   int64
}

// NewAliasMemory returns an alias memory forwarding to under.
func NewAliasMemory(under Memory) *AliasMemory {
	return &AliasMemory{Under: under, aliases: make(map[aliasKey]Location)}
}

// Name implements Memory.
func (m *AliasMemory) Name() string { return "alias" }

// Children implements Graph.
func (m *AliasMemory) Children() []Memory { return []Memory{m.Under} }

// Alias records that loc stands for target.
func (m *AliasMemory) Alias(loc, target Location) {
	m.aliases[aliasKey{loc.Space, loc.Offset}] = target
}

// AliasOf reports the recorded alias for loc.
func (m *AliasMemory) AliasOf(loc Location) (Location, bool) {
	t, ok := m.aliases[aliasKey{loc.Space, loc.Offset}]
	return t, ok
}

// Aliases lists the recorded aliases in deterministic order, for DAG
// dumps and for reusing unmodified callee-save aliases when walking to
// a calling frame.
func (m *AliasMemory) Aliases() []struct{ From, To Location } {
	keys := make([]aliasKey, 0, len(m.aliases))
	for k := range m.aliases {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].space != keys[j].space {
			return keys[i].space < keys[j].space
		}
		return keys[i].off < keys[j].off
	})
	out := make([]struct{ From, To Location }, len(keys))
	for i, k := range keys {
		out[i] = struct{ From, To Location }{Abs(k.space, k.off), m.aliases[k]}
	}
	return out
}

func (m *AliasMemory) resolve(loc Location) (Location, error) {
	if loc.Mode == Immediate {
		return loc, nil
	}
	if t, ok := m.AliasOf(loc); ok {
		return t, nil
	}
	return Location{}, fmt.Errorf("%w: %s", ErrUnaliased, loc)
}

// FetchInt implements Memory.
func (m *AliasMemory) FetchInt(loc Location, size int) (uint64, error) {
	t, err := m.resolve(loc)
	if err != nil {
		return 0, err
	}
	if t.Mode == Immediate {
		if err := checkIntSize(size); err != nil {
			return 0, err
		}
		return truncInt(t.Imm, size), nil
	}
	return m.Under.FetchInt(t, size)
}

// StoreInt implements Memory.
func (m *AliasMemory) StoreInt(loc Location, size int, val uint64) error {
	t, err := m.resolve(loc)
	if err != nil {
		return err
	}
	if t.Mode == Immediate {
		return ErrImmStore
	}
	return m.Under.StoreInt(t, size, val)
}

// FetchFloat implements Memory.
func (m *AliasMemory) FetchFloat(loc Location, size int) (float64, error) {
	t, err := m.resolve(loc)
	if err != nil {
		return 0, err
	}
	if t.Mode == Immediate {
		if err := checkFloatSize(size); err != nil {
			return 0, err
		}
		return t.ImmF, nil
	}
	return m.Under.FetchFloat(t, size)
}

// StoreFloat implements Memory.
func (m *AliasMemory) StoreFloat(loc Location, size int, val float64) error {
	t, err := m.resolve(loc)
	if err != nil {
		return err
	}
	if t.Mode == Immediate {
		return ErrImmStore
	}
	return m.Under.StoreFloat(t, size, val)
}

// RegisterMemory transforms sub-word fetches and stores on a register
// space into full-word operations on the underlying memory, making the
// target byte order irrelevant (§4.1): if ldb fetches a character from
// a 32-bit register, the register memory fetches the whole register but
// returns only the least significant 8 bits. This lets ldb execute the
// same code whether debugging a little-endian or a big-endian target.
type RegisterMemory struct {
	Under Memory
	// Width is the register width in bytes (4 for the general registers
	// of all four targets).
	Width int
}

// NewRegisterMemory wraps under with full-word widening.
func NewRegisterMemory(under Memory, width int) *RegisterMemory {
	return &RegisterMemory{Under: under, Width: width}
}

// Name implements Memory.
func (m *RegisterMemory) Name() string { return "register" }

// Children implements Graph.
func (m *RegisterMemory) Children() []Memory { return []Memory{m.Under} }

// FetchInt implements Memory.
func (m *RegisterMemory) FetchInt(loc Location, size int) (uint64, error) {
	if err := checkIntSize(size); err != nil {
		return 0, err
	}
	whole, err := m.Under.FetchInt(loc, m.Width)
	if err != nil {
		return 0, err
	}
	return truncInt(whole, size), nil
}

// StoreInt implements Memory.
func (m *RegisterMemory) StoreInt(loc Location, size int, val uint64) error {
	if err := checkIntSize(size); err != nil {
		return err
	}
	if size == m.Width {
		return m.Under.StoreInt(loc, size, val)
	}
	whole, err := m.Under.FetchInt(loc, m.Width)
	if err != nil {
		return err
	}
	mask := uint64(1)<<(8*uint(size)) - 1
	merged := (whole &^ mask) | (val & mask)
	return m.Under.StoreInt(loc, m.Width, merged)
}

// FetchFloat implements Memory.
func (m *RegisterMemory) FetchFloat(loc Location, size int) (float64, error) {
	if err := checkFloatSize(size); err != nil {
		return 0, err
	}
	return m.Under.FetchFloat(loc, size)
}

// StoreFloat implements Memory.
func (m *RegisterMemory) StoreFloat(loc Location, size int, val float64) error {
	if err := checkFloatSize(size); err != nil {
		return err
	}
	return m.Under.StoreFloat(loc, size, val)
}

// JoinedMemory combines memories that serve different spaces, routing
// each fetch or store to the appropriate underlying memory. The joined
// memory is the instance presented to the rest of the debugger as the
// abstract memory for a stack frame (§4.1). Immediate-mode fetches
// return immediate values directly.
type JoinedMemory struct {
	routes map[Space]Memory
	order  []Space
}

// NewJoinedMemory returns an empty joined memory.
func NewJoinedMemory() *JoinedMemory {
	return &JoinedMemory{routes: make(map[Space]Memory)}
}

// Route directs requests in space to m.
func (j *JoinedMemory) Route(space Space, m Memory) {
	if _, dup := j.routes[space]; !dup {
		j.order = append(j.order, space)
	}
	j.routes[space] = m
}

// Name implements Memory.
func (j *JoinedMemory) Name() string { return "joined" }

// Children implements Graph.
func (j *JoinedMemory) Children() []Memory {
	seen := make(map[Memory]bool)
	var out []Memory
	for _, s := range j.order {
		m := j.routes[s]
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// SpaceOf returns the memory serving space.
func (j *JoinedMemory) SpaceOf(space Space) (Memory, bool) {
	m, ok := j.routes[space]
	return m, ok
}

// Spaces lists the routed spaces in registration order.
func (j *JoinedMemory) Spaces() []Space {
	out := make([]Space, len(j.order))
	copy(out, j.order)
	return out
}

func (j *JoinedMemory) route(loc Location) (Memory, error) {
	m, ok := j.routes[loc.Space]
	if !ok {
		return nil, fmt.Errorf("%w: %s in joined memory", ErrBadSpace, loc)
	}
	return m, nil
}

// FetchInt implements Memory.
func (j *JoinedMemory) FetchInt(loc Location, size int) (uint64, error) {
	if loc.Mode == Immediate {
		if err := checkIntSize(size); err != nil {
			return 0, err
		}
		return truncInt(loc.Imm, size), nil
	}
	m, err := j.route(loc)
	if err != nil {
		return 0, err
	}
	return m.FetchInt(loc, size)
}

// StoreInt implements Memory.
func (j *JoinedMemory) StoreInt(loc Location, size int, val uint64) error {
	if loc.Mode == Immediate {
		return ErrImmStore
	}
	m, err := j.route(loc)
	if err != nil {
		return err
	}
	return m.StoreInt(loc, size, val)
}

// FetchFloat implements Memory.
func (j *JoinedMemory) FetchFloat(loc Location, size int) (float64, error) {
	if loc.Mode == Immediate {
		if err := checkFloatSize(size); err != nil {
			return 0, err
		}
		return loc.ImmF, nil
	}
	m, err := j.route(loc)
	if err != nil {
		return 0, err
	}
	return m.FetchFloat(loc, size)
}

// StoreFloat implements Memory.
func (j *JoinedMemory) StoreFloat(loc Location, size int, val float64) error {
	if loc.Mode == Immediate {
		return ErrImmStore
	}
	m, err := j.route(loc)
	if err != nil {
		return err
	}
	return m.StoreFloat(loc, size, val)
}

// Describe renders the DAG rooted at m, one memory per line with
// indentation showing forwarding edges — the textual form of Fig. 4.
func Describe(m Memory) string {
	var b strings.Builder
	seen := make(map[Memory]bool)
	var walk func(m Memory, depth int)
	walk = func(m Memory, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(m.Name())
		if j, ok := m.(*JoinedMemory); ok {
			b.WriteString(" [spaces:")
			for _, s := range j.Spaces() {
				b.WriteByte(' ')
				b.WriteByte(byte(s))
			}
			b.WriteString("]")
		}
		if seen[m] {
			b.WriteString(" (shared)\n")
			return
		}
		seen[m] = true
		b.WriteByte('\n')
		if g, ok := m.(Graph); ok {
			for _, c := range g.Children() {
				walk(c, depth+1)
			}
		}
	}
	walk(m, 0)
	return b.String()
}
