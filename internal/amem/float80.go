package amem

import "math"

// The m68k family stores extended-precision reals as 96-bit memory
// images: a 15-bit biased exponent in the high word (with 16 bits of
// padding) and a 64-bit mantissa with an explicit integer bit. Go has
// no float80, so arithmetic happens in float64, but the storage format
// — the machine-dependent part the debugger must understand — is real.

const ext80Bias = 16383

// EncodeFloat80 converts v to the 12-byte big-endian m68k extended
// memory image.
func EncodeFloat80(v float64) [12]byte {
	var out [12]byte
	sign := uint16(0)
	if math.Signbit(v) {
		sign = 0x8000
		v = -v
	}
	var exp uint16
	var mant uint64
	switch {
	case math.IsInf(v, 0):
		exp = 0x7fff
		mant = 0x8000000000000000
	case math.IsNaN(v):
		exp = 0x7fff
		mant = 0xc000000000000000
	case v == 0:
		exp, mant = 0, 0
	default:
		frac, e := math.Frexp(v) // v = frac * 2**e, frac in [0.5, 1)
		// mantissa with explicit integer bit: frac*2 in [1,2)
		mant = uint64(frac * (1 << 63) * 2)
		exp = uint16(e - 1 + ext80Bias)
	}
	se := sign | exp
	out[0] = byte(se >> 8)
	out[1] = byte(se)
	// bytes 2-3 are padding (zero) in the 96-bit memory image
	for i := 0; i < 8; i++ {
		out[4+i] = byte(mant >> (56 - 8*i))
	}
	return out
}

// DecodeFloat80 converts a 12-byte big-endian m68k extended memory
// image to float64 (with float64 precision).
func DecodeFloat80(b [12]byte) float64 {
	se := uint16(b[0])<<8 | uint16(b[1]) //ldb:allow endian the 68881 extended format is defined big-endian in memory
	sign := se&0x8000 != 0
	exp := int(se & 0x7fff)
	var mant uint64
	for i := 0; i < 8; i++ {
		mant = mant<<8 | uint64(b[4+i]) //ldb:allow endian the 68881 extended format is defined big-endian in memory
	}
	var v float64
	switch {
	case exp == 0x7fff:
		if mant<<1 == 0 { // only the explicit integer bit
			v = math.Inf(1)
		} else {
			v = math.NaN()
		}
	case exp == 0 && mant == 0:
		v = 0
	default:
		frac := float64(mant) / (1 << 63) / 2 // back to [0.5, 1)
		v = math.Ldexp(frac, exp-ext80Bias+1)
	}
	if sign {
		v = -v
	}
	return v
}
