package amem

import (
	"encoding/binary"
	"fmt"
)

// BufMemory is an abstract memory backed by a byte slice with a byte
// order. It serves one space (plus immediate fetches) and is used for
// contexts, for tests, and as the process-side memory of the simulated
// machines.
type BufMemory struct {
	Label string
	Space Space
	Order binary.ByteOrder
	// Base is subtracted from absolute offsets before indexing Data, so
	// a BufMemory can present a window of a larger address space.
	Base int64
	Data []byte

	// shadow, when armed by EnableSnapshots, tracks dirty pages for
	// copy-on-write forking (snap.go).
	shadow *Shadow
}

// NewBufMemory returns a BufMemory of n bytes serving the given space.
func NewBufMemory(space Space, order binary.ByteOrder, n int) *BufMemory {
	return &BufMemory{Label: "buf", Space: space, Order: order, Data: make([]byte, n)}
}

// Name implements Memory.
func (m *BufMemory) Name() string {
	if m.Label != "" {
		return m.Label
	}
	return "buf"
}

func (m *BufMemory) slice(loc Location, size int) ([]byte, error) {
	if loc.Space != m.Space {
		return nil, fmt.Errorf("%w: %s in %s memory", ErrBadSpace, loc, m.Name())
	}
	off := loc.Offset - m.Base
	if off < 0 || off+int64(size) > int64(len(m.Data)) {
		return nil, fmt.Errorf("%w: %s size %d in %s memory", ErrOutOfRange, loc, size, m.Name())
	}
	return m.Data[off : off+int64(size)], nil
}

// FetchInt implements Memory.
func (m *BufMemory) FetchInt(loc Location, size int) (uint64, error) {
	if err := checkIntSize(size); err != nil {
		return 0, err
	}
	if loc.Mode == Immediate {
		return truncInt(loc.Imm, size), nil
	}
	b, err := m.slice(loc, size)
	if err != nil {
		return 0, err
	}
	return ReadInt(m.Order, b), nil
}

// StoreInt implements Memory.
func (m *BufMemory) StoreInt(loc Location, size int, val uint64) error {
	if err := checkIntSize(size); err != nil {
		return err
	}
	if loc.Mode == Immediate {
		return ErrImmStore
	}
	b, err := m.slice(loc, size)
	if err != nil {
		return err
	}
	if m.shadow != nil {
		m.shadow.Mark(int(loc.Offset-m.Base), size)
	}
	WriteInt(m.Order, b, val)
	return nil
}

// FetchFloat implements Memory.
func (m *BufMemory) FetchFloat(loc Location, size int) (float64, error) {
	if err := checkFloatSize(size); err != nil {
		return 0, err
	}
	if loc.Mode == Immediate {
		return loc.ImmF, nil
	}
	b, err := m.slice(loc, floatStorageSize(size))
	if err != nil {
		return 0, err
	}
	return DecodeFloat(m.Order, b, size), nil
}

// StoreFloat implements Memory.
func (m *BufMemory) StoreFloat(loc Location, size int, val float64) error {
	if err := checkFloatSize(size); err != nil {
		return err
	}
	if loc.Mode == Immediate {
		return ErrImmStore
	}
	b, err := m.slice(loc, floatStorageSize(size))
	if err != nil {
		return err
	}
	if m.shadow != nil {
		m.shadow.Mark(int(loc.Offset-m.Base), floatStorageSize(size))
	}
	EncodeFloat(m.Order, b, size, val)
	return nil
}

// floatStorageSize maps a float size to its in-memory footprint; the
// 80-bit format occupies 12 bytes.
func floatStorageSize(size int) int {
	if size == Float80 {
		return 12
	}
	return size
}

// ReadInt decodes len(b) bytes (1, 2, or 4) in the given order.
func ReadInt(order binary.ByteOrder, b []byte) uint64 {
	switch len(b) {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(order.Uint16(b))
	case 4:
		return uint64(order.Uint32(b))
	}
	panic("amem: bad int width")
}

// WriteInt encodes the low len(b) bytes of val in the given order.
func WriteInt(order binary.ByteOrder, b []byte, val uint64) {
	switch len(b) {
	case 1:
		b[0] = byte(val)
	case 2:
		order.PutUint16(b, uint16(val))
	case 4:
		order.PutUint32(b, uint32(val))
	default:
		panic("amem: bad int width")
	}
}

// DecodeFloat decodes a float of logical size (4, 8, or 10) from b.
func DecodeFloat(order binary.ByteOrder, b []byte, size int) float64 {
	switch size {
	case Float32:
		return float64(math32frombits(order.Uint32(b)))
	case Float64:
		return math64frombits(order.Uint64(b))
	case Float80:
		var img [12]byte
		copy(img[:], b)
		return DecodeFloat80(img)
	}
	panic("amem: bad float size")
}

// EncodeFloat encodes a float of logical size (4, 8, or 10) into b.
func EncodeFloat(order binary.ByteOrder, b []byte, size int, val float64) {
	switch size {
	case Float32:
		order.PutUint32(b, math32bits(float32(val)))
	case Float64:
		order.PutUint64(b, math64bits(val))
	case Float80:
		img := EncodeFloat80(val)
		copy(b, img[:])
	default:
		panic("amem: bad float size")
	}
}
