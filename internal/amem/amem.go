// Package amem implements ldb's abstract memories (§4.1 of the paper).
//
// An abstract memory represents the registers and memory of a target
// process as a collection of spaces denoted by lower-case letters
// ('c' for code, 'd' for data, 'r' for registers, ...). Locations within
// a space are integer offsets; in register spaces the offset is the
// register number. Given a memory and a location, ldb can fetch and
// store three sizes of integers (8, 16, and 32 bits) and three sizes of
// floating-point values (32, 64, and 80 bits) — the values and types
// correspond closely to those of lcc's intermediate representation (§7).
//
// Instances are combined into a directed acyclic graph per stack frame
// (Fig. 4): a joined memory routes requests by space to a register
// memory (which widens sub-word register access so byte order is
// irrelevant), an alias memory (which redirects saved registers to the
// context in the data space or to immediate locations), and a wire
// memory (which forwards to the nub in the target process).
package amem

import (
	"errors"
	"fmt"
)

// Space identifies a space of an abstract memory. Every machine has
// code and data spaces; other spaces are added per machine (on the
// MIPS: r for general registers, f for floating registers, and x for
// the extra registers — program counter and virtual frame pointer).
type Space byte

// The conventional spaces.
const (
	Code  Space = 'c'
	Data  Space = 'd'
	Reg   Space = 'r'
	Float Space = 'f'
	Extra Space = 'x'
)

func (s Space) String() string { return string(byte(s)) }

// Mode is the addressing mode of a location.
type Mode uint8

// Addressing modes. ldb provides several; Absolute names an offset
// within a space, Immediate carries the value itself.
const (
	Absolute Mode = iota
	Immediate
)

// Location names a place in an abstract memory.
type Location struct {
	Mode   Mode
	Space  Space
	Offset int64 // absolute: offset within Space (register number in register spaces)
	Imm    uint64
	ImmF   float64
}

// Abs returns an absolute location.
func Abs(space Space, offset int64) Location {
	return Location{Mode: Absolute, Space: space, Offset: offset}
}

// Imm returns an immediate integer location.
func Imm(v uint64) Location { return Location{Mode: Immediate, Imm: v, ImmF: float64(v)} }

// ImmFloat returns an immediate floating location.
func ImmFloat(v float64) Location { return Location{Mode: Immediate, ImmF: v, Imm: uint64(int64(v))} }

// Shifted returns the location offset by delta bytes (or registers, in a
// register space). Shifting an immediate location shifts its value,
// which is how PostScript printers step through arrays when the "array"
// is a register-resident scalar spilled to an immediate.
func (l Location) Shifted(delta int64) Location {
	if l.Mode == Immediate {
		l.Imm += uint64(delta)
		l.ImmF = float64(l.Imm)
		return l
	}
	l.Offset += delta
	return l
}

func (l Location) String() string {
	if l.Mode == Immediate {
		return fmt.Sprintf("#%d", int64(l.Imm))
	}
	return fmt.Sprintf("%s:%d", l.Space, l.Offset)
}

// Integer and float sizes accepted by fetch and store, in bytes.
const (
	Int8    = 1
	Int16   = 2
	Int32   = 4
	Float32 = 4
	Float64 = 8
	Float80 = 10 // m68k extended precision; stored as 12 bytes in memory
)

// Errors returned by memories.
var (
	ErrBadSpace   = errors.New("amem: no such space in this memory")
	ErrBadSize    = errors.New("amem: unsupported access size")
	ErrUnaliased  = errors.New("amem: location has no alias")
	ErrImmStore   = errors.New("amem: store to immediate location")
	ErrOutOfRange = errors.New("amem: address out of range")
)

// Memory is an abstract memory: a fetch/store interface over spaces.
// Integer values travel as raw bits in the low-order bytes of a uint64;
// sign extension is the caller's business.
type Memory interface {
	// Name identifies the memory in DAG dumps ("wire", "alias", ...).
	Name() string
	// FetchInt reads size bytes (1, 2, or 4) at loc.
	FetchInt(loc Location, size int) (uint64, error)
	// StoreInt writes size bytes (1, 2, or 4) at loc.
	StoreInt(loc Location, size int, val uint64) error
	// FetchFloat reads a float of size 4, 8, or 10 bytes at loc.
	FetchFloat(loc Location, size int) (float64, error)
	// StoreFloat writes a float of size 4, 8, or 10 bytes at loc.
	StoreFloat(loc Location, size int, val float64) error
}

// Graph is implemented by memories that forward to other memories;
// Describe uses it to render the DAG of Fig. 4.
type Graph interface {
	Children() []Memory
}

func checkIntSize(size int) error {
	switch size {
	case Int8, Int16, Int32:
		return nil
	}
	return fmt.Errorf("%w: int size %d", ErrBadSize, size)
}

func checkFloatSize(size int) error {
	switch size {
	case Float32, Float64, Float80:
		return nil
	}
	return fmt.Errorf("%w: float size %d", ErrBadSize, size)
}

// truncInt masks val to size bytes.
func truncInt(val uint64, size int) uint64 {
	switch size {
	case Int8:
		return val & 0xff
	case Int16:
		return val & 0xffff
	case Int32:
		return val & 0xffffffff
	}
	return val
}

// SignExtend interprets the low size bytes of raw as a signed integer.
func SignExtend(raw uint64, size int) int64 {
	switch size {
	case Int8:
		return int64(int8(raw))
	case Int16:
		return int64(int16(raw))
	case Int32:
		return int64(int32(raw))
	}
	return int64(raw)
}
