package amem

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestShadowForkSharesCleanPages(t *testing.T) {
	n := 4 * SnapPage
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i)
	}
	sh := NewShadow(n)
	pm1 := sh.Fork(data)
	if pm1.Len() != n || pm1.NumPages() != 4 {
		t.Fatalf("first fork: len %d pages %d", pm1.Len(), pm1.NumPages())
	}
	if !bytes.Equal(pm1.Materialize(), data) {
		t.Fatal("first fork does not match data")
	}

	// Dirty only page 2; the second fork must share pages 0, 1, 3.
	data[2*SnapPage] = 0xEE
	sh.Mark(2*SnapPage, 1)
	pm2 := sh.Fork(data)
	for i := 0; i < 4; i++ {
		shared := &pm1.pages[i][0] == &pm2.pages[i][0]
		if i == 2 && shared {
			t.Fatal("dirty page 2 shared with previous snapshot")
		}
		if i != 2 && !shared {
			t.Fatalf("clean page %d not shared with previous snapshot", i)
		}
	}
	if !bytes.Equal(pm2.Materialize(), data) {
		t.Fatal("second fork does not match data")
	}
	// pm1 is immutable: it still holds the old byte.
	want := byte(2 * SnapPage % 256)
	if got := pm1.Materialize()[2*SnapPage]; got != want {
		t.Fatalf("snapshot mutated: page 2 byte 0 = %#x, want %#x", got, want)
	}
}

func TestShadowZeroPageElision(t *testing.T) {
	n := 3*SnapPage + 100 // ragged tail
	data := make([]byte, n)
	data[SnapPage+5] = 7 // only page 1 is nonzero
	sh := NewShadow(n)
	pm := sh.Fork(data)
	if pm.NumPages() != 4 {
		t.Fatalf("pages = %d, want 4", pm.NumPages())
	}
	for i := 0; i < 4; i++ {
		if i == 1 && pm.Page(i) == nil {
			t.Fatal("nonzero page 1 elided")
		}
		if i != 1 && pm.Page(i) != nil {
			t.Fatalf("all-zero page %d not elided", i)
		}
	}
	if !bytes.Equal(pm.Materialize(), data) {
		t.Fatal("materialized snapshot does not match data")
	}
}

func TestShadowMarkSpansPages(t *testing.T) {
	sh := NewShadow(3 * SnapPage)
	clear(sh.Dirty)
	sh.Mark(SnapPage-2, 4) // straddles pages 0 and 1
	if !sh.Dirty[0] || !sh.Dirty[1] || sh.Dirty[2] {
		t.Fatalf("dirty = %v", sh.Dirty)
	}
	sh.Mark(10*SnapPage, 4) // out of range: clamped, no panic
	sh.Mark(-5, 2)
}

func TestPageMapFromPagesValidates(t *testing.T) {
	if _, err := PageMapFromPages(SnapPage+1, make([][]byte, 1)); err == nil {
		t.Fatal("wrong page count accepted")
	}
	if _, err := PageMapFromPages(SnapPage, [][]byte{make([]byte, 17)}); err == nil {
		t.Fatal("wrong page size accepted")
	}
	pm, err := PageMapFromPages(SnapPage+4, [][]byte{nil, []byte{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, SnapPage+4)
	copy(want[SnapPage:], []byte{1, 2, 3, 4})
	if !bytes.Equal(pm.Materialize(), want) {
		t.Fatal("materialized mismatch")
	}
}

func TestBufMemorySnapshotRestore(t *testing.T) {
	m := NewBufMemory(Data, binary.LittleEndian, 2*SnapPage)
	loc := func(off int64) Location { return Location{Space: Data, Offset: off} }
	if err := m.StoreInt(loc(8), 4, 0x11223344); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()

	// Mutate both pages after the snapshot, then restore.
	if err := m.StoreInt(loc(8), 4, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreFloat(loc(SnapPage+16), Float64, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	v, err := m.FetchInt(loc(8), 4)
	if err != nil || v != 0x11223344 {
		t.Fatalf("after restore: %#x, %v", v, err)
	}
	f, err := m.FetchFloat(loc(SnapPage+16), Float64)
	if err != nil || f != 0 {
		t.Fatalf("after restore: %v, %v", f, err)
	}

	// A post-restore fork shares pages with the restored snapshot.
	pm2 := m.Snapshot().Mem
	if snap.Mem.Page(0) == nil || &snap.Mem.Page(0)[0] != &pm2.Page(0)[0] {
		t.Fatal("post-restore fork does not share clean pages")
	}

	// Mismatched snapshots are rejected.
	other := NewBufMemory(Code, binary.LittleEndian, 2*SnapPage)
	if err := other.RestoreSnapshot(snap); err == nil {
		t.Fatal("cross-space restore accepted")
	}
}

func TestJoinedMemorySnapshot(t *testing.T) {
	j := NewJoinedMemory()
	d := NewBufMemory(Data, binary.LittleEndian, SnapPage)
	c := NewBufMemory(Code, binary.LittleEndian, SnapPage)
	j.Route(Data, d)
	j.Route(Code, c)
	if err := j.StoreInt(Location{Space: Data, Offset: 4}, 4, 99); err != nil {
		t.Fatal(err)
	}
	snap := j.Snapshot()
	if len(snap.Snaps) != 2 {
		t.Fatalf("snapshotted %d routes, want 2", len(snap.Snaps))
	}
	if err := j.StoreInt(Location{Space: Data, Offset: 4}, 4, 1); err != nil {
		t.Fatal(err)
	}
	if err := j.StoreInt(Location{Space: Code, Offset: 0}, 4, 2); err != nil {
		t.Fatal(err)
	}
	if err := j.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	v, err := j.FetchInt(Location{Space: Data, Offset: 4}, 4)
	if err != nil || v != 99 {
		t.Fatalf("data after restore: %d, %v", v, err)
	}
	v, err = j.FetchInt(Location{Space: Code, Offset: 0}, 4)
	if err != nil || v != 0 {
		t.Fatalf("code after restore: %d, %v", v, err)
	}
}
