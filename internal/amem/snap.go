package amem

import "fmt"

// Copy-on-write snapshots. A Shadow tracks which pages of a byte-slice
// backed memory have been written since the last snapshot; Fork then
// copies only the dirty pages and shares the clean ones structurally
// with the previous snapshot, so a checkpoint costs O(dirty pages), not
// O(memory). Snapshots (PageMaps) are immutable once taken: restoring
// one copies pages back out, it never hands the live memory an aliased
// slice it could scribble on.

const (
	// SnapShift is log2 of the snapshot page size. Hot store paths may
	// mark dirty pages inline as Dirty[offset>>SnapShift] = true.
	SnapShift = 12
	// SnapPage is the snapshot page granularity in bytes.
	SnapPage = 1 << SnapShift
)

// PageMap is an immutable page-granular snapshot of a byte slice. A nil
// page entry denotes an all-zero page (stacks are mostly zeros), and
// clean pages are shared with the snapshot they were forked from.
type PageMap struct {
	n     int
	pages [][]byte
}

// Len returns the length in bytes of the snapshotted memory.
func (pm *PageMap) Len() int { return pm.n }

// NumPages returns the number of pages in the map.
func (pm *PageMap) NumPages() int { return len(pm.pages) }

// Page returns page i, or nil for an all-zero page. The returned slice
// is part of the immutable snapshot and must not be modified.
func (pm *PageMap) Page(i int) []byte { return pm.pages[i] }

// PageMapFromPages rebuilds a PageMap from deserialized pages. Each
// non-nil page must be exactly the size that page has in an n-byte
// memory (SnapPage, except possibly the last); nil entries denote
// all-zero pages. The pages are adopted, not copied.
func PageMapFromPages(n int, pages [][]byte) (*PageMap, error) {
	if n < 0 {
		return nil, fmt.Errorf("amem: negative snapshot length %d", n)
	}
	np := (n + SnapPage - 1) / SnapPage
	if len(pages) != np {
		return nil, fmt.Errorf("amem: snapshot has %d pages, want %d for %d bytes", len(pages), np, n)
	}
	for i, pg := range pages {
		if pg == nil {
			continue
		}
		want := SnapPage
		if i == np-1 {
			want = n - i*SnapPage
		}
		if len(pg) != want {
			return nil, fmt.Errorf("amem: snapshot page %d has %d bytes, want %d", i, len(pg), want)
		}
	}
	return &PageMap{n: n, pages: pages}, nil
}

// Materialize returns a fresh byte slice with the snapshot's contents.
func (pm *PageMap) Materialize() []byte {
	out := make([]byte, pm.n)
	pm.CopyTo(out)
	return out
}

// CopyTo writes the snapshot's contents into dst, which must be exactly
// Len() bytes.
func (pm *PageMap) CopyTo(dst []byte) {
	if len(dst) != pm.n {
		panic(fmt.Sprintf("amem: CopyTo into %d bytes, snapshot is %d", len(dst), pm.n))
	}
	for i, pg := range pm.pages {
		lo := i * SnapPage
		hi := lo + SnapPage
		if hi > pm.n {
			hi = pm.n
		}
		if pg == nil {
			clear(dst[lo:hi])
		} else {
			copy(dst[lo:hi], pg)
		}
	}
}

// Shadow tracks dirty pages of a byte-slice memory between snapshots.
type Shadow struct {
	// Dirty has one entry per SnapPage-sized page. Write barriers set
	// entries directly (Dirty[off>>SnapShift] = true) or via Mark.
	Dirty []bool
	prev  *PageMap
}

// NewShadow returns a Shadow for an n-byte memory. Every page starts
// dirty, so the first Fork captures the full contents.
func NewShadow(n int) *Shadow {
	return &Shadow{Dirty: make([]bool, (n+SnapPage-1)/SnapPage)}
}

// Mark records that n bytes at offset off have been (or are about to
// be) written. Out-of-range spans are clamped.
func (sh *Shadow) Mark(off, n int) {
	if n <= 0 {
		return
	}
	a := off >> SnapShift
	b := (off + n - 1) >> SnapShift
	if a < 0 {
		a = 0
	}
	for ; a <= b && a < len(sh.Dirty); a++ {
		sh.Dirty[a] = true
	}
}

// Fork takes a snapshot of data: dirty pages are copied (with all-zero
// pages elided), clean pages are shared with the previous snapshot. The
// shadow is reset so the next Fork captures only writes after this one.
func (sh *Shadow) Fork(data []byte) *PageMap {
	np := (len(data) + SnapPage - 1) / SnapPage
	pm := &PageMap{n: len(data), pages: make([][]byte, np)}
	share := sh.prev != nil && sh.prev.n == len(data)
	for i := 0; i < np; i++ {
		if share && i < len(sh.Dirty) && !sh.Dirty[i] {
			pm.pages[i] = sh.prev.pages[i]
			continue
		}
		lo := i * SnapPage
		hi := lo + SnapPage
		if hi > len(data) {
			hi = len(data)
		}
		pg := data[lo:hi]
		if !allZero(pg) {
			pm.pages[i] = append([]byte(nil), pg...)
		}
		if i < len(sh.Dirty) {
			sh.Dirty[i] = false
		}
	}
	if np != len(sh.Dirty) {
		sh.Dirty = make([]bool, np)
	}
	sh.prev = pm
	return pm
}

// Reset re-bases the shadow on a snapshot the memory has just been
// restored to: all pages are clean relative to pm, so the next Fork is
// again O(pages dirtied since the restore).
func (sh *Shadow) Reset(pm *PageMap) {
	np := (pm.n + SnapPage - 1) / SnapPage
	if np != len(sh.Dirty) {
		sh.Dirty = make([]bool, np)
	} else {
		clear(sh.Dirty)
	}
	sh.prev = pm
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// BufSnapshot is an immutable snapshot of one BufMemory.
type BufSnapshot struct {
	Space Space
	Base  int64
	Mem   *PageMap
}

// EnableSnapshots arms dirty-page tracking on m. Until armed, stores
// are not tracked and the first Snapshot copies everything anyway.
func (m *BufMemory) EnableSnapshots() {
	if m.shadow == nil {
		m.shadow = NewShadow(len(m.Data))
	}
}

// Snapshot forks an immutable copy-on-write snapshot of m, arming
// dirty-page tracking if it was not already on.
func (m *BufMemory) Snapshot() *BufSnapshot {
	m.EnableSnapshots()
	return &BufSnapshot{Space: m.Space, Base: m.Base, Mem: m.shadow.Fork(m.Data)}
}

// RestoreSnapshot copies a snapshot's contents back into m. The
// snapshot must describe the same space, base, and length.
func (m *BufMemory) RestoreSnapshot(s *BufSnapshot) error {
	if s.Space != m.Space || s.Base != m.Base || s.Mem.Len() != len(m.Data) {
		return fmt.Errorf("amem: snapshot of space %q base %d len %d does not match %s (space %q base %d len %d)",
			s.Space, s.Base, s.Mem.Len(), m.Name(), m.Space, m.Base, len(m.Data))
	}
	s.Mem.CopyTo(m.Data)
	if m.shadow != nil {
		m.shadow.Reset(s.Mem)
	}
	return nil
}

// JoinedSnapshot is a snapshot of every BufMemory-backed route of a
// JoinedMemory.
type JoinedSnapshot struct {
	Snaps []*BufSnapshot
}

// Snapshot forks a snapshot of every route backed by a BufMemory;
// routes of other kinds (register files, wire memories) are skipped.
func (j *JoinedMemory) Snapshot() *JoinedSnapshot {
	js := &JoinedSnapshot{}
	for _, sp := range j.order {
		if bm, ok := j.routes[sp].(*BufMemory); ok {
			js.Snaps = append(js.Snaps, bm.Snapshot())
		}
	}
	return js
}

// RestoreSnapshot copies a JoinedSnapshot back into the matching
// BufMemory routes.
func (j *JoinedMemory) RestoreSnapshot(s *JoinedSnapshot) error {
	for _, bs := range s.Snaps {
		m, ok := j.routes[bs.Space].(*BufMemory)
		if !ok {
			return fmt.Errorf("amem: snapshot space %q has no BufMemory route", bs.Space)
		}
		if err := m.RestoreSnapshot(bs); err != nil {
			return err
		}
	}
	return nil
}
