package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// The wirecompat analyzer keeps versioned reply bodies append-only. The
// protocol's compatibility story (the 64-byte MServiceStats body that
// grew to 88, the 40-byte simstats body that grew to 56) depends on old
// readers parsing a prefix of new replies: a field may only ever be
// appended, never reordered or inserted mid-struct, because every
// offset before the append point is frozen the day a reader ships. A
// struct opts in with:
//
//	//ldb:wire-body <wirename> size=<total> [legacy=<prefix>]
//
// on its declaration, and every field carries its frozen byte offset as
// a trailing comment:
//
//	Steps int64 //ldb:off 0
//
// The analyzer recomputes each offset from the declaration order and
// the fixed wire widths (int64/uint64/float64 = 8, int32/uint32/
// float32 = 4, int16/uint16 = 2, int8/uint8/byte/bool = 1): a mismatch
// is precisely a reorder or a mid-struct insertion, reported against
// the field that moved. `size` must equal the computed total; `legacy`
// must land on a field boundary strictly inside the body (the prefix an
// old reader accepts). The wirename must exist in the package's
// //ldb:kind-table when one is declared, pinning each body to its
// message kind.
//
// Encoder/decoder symmetry: within the declaring package, a function
// that references the struct's fields and calls binary.LittleEndian's
// Put* writers is an encoder; one that references the fields and calls
// the Uint* readers is a decoder. Every wire body must have at least
// one of each, and each encoder and decoder must touch every field —
// an appended field that one side forgot is a diagnostic, not a silent
// short read.

type wireBody struct {
	pkg    *Pkg
	file   *File
	name   string // wire name from the directive
	size   int    // declared total size
	legacy int    // declared legacy prefix (0 when absent)
	spec   *ast.TypeSpec
	obj    types.Object // the struct type object
	fields []wireField
	node   ast.Node
}

type wireField struct {
	obj    types.Object
	field  *ast.Field
	name   string
	width  int
	off    int  // declared //ldb:off
	hasOff bool // the field carries //ldb:off at all
}

func runWirecompat(r *Repo) []Diagnostic {
	if r.Info == nil {
		return nil
	}
	var diags []Diagnostic
	add := func(n ast.Node, format string, args ...any) {
		path, line, col := r.Position(n.Pos())
		diags = append(diags, Diagnostic{
			Analyzer: "wirecompat", Path: path, Line: line, Col: col,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	for _, p := range r.Pkgs {
		var bodies []*wireBody
		for _, f := range p.Files {
			for _, decl := range f.AST.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				args, _, ok := commentGroupArgs(gd.Doc, "wire-body")
				if !ok {
					continue
				}
				wb, errs := r.parseWireBody(p, f, gd, args)
				for _, e := range errs {
					add(gd, "%s", e)
				}
				if wb != nil {
					bodies = append(bodies, wb)
				}
			}
		}
		if len(bodies) == 0 {
			continue
		}
		kt, _ := r.findKindTable(p) // its own diagnostics belong to wireproto
		for _, wb := range bodies {
			diags = append(diags, r.checkWireBody(wb, kt)...)
			diags = append(diags, r.checkWireSymmetry(wb)...)
		}
	}
	return diags
}

// parseWireBody parses one //ldb:wire-body struct declaration.
func (r *Repo) parseWireBody(p *Pkg, f *File, gd *ast.GenDecl, args []string) (*wireBody, []string) {
	var errs []string
	wb := &wireBody{pkg: p, file: f, node: gd, size: -1}
	if len(args) == 0 {
		return nil, []string{"//ldb:wire-body needs a wire name"}
	}
	wb.name = args[0]
	for _, a := range args[1:] {
		k, v, ok := strings.Cut(a, "=")
		n, err := strconv.Atoi(v)
		if !ok || err != nil || n < 0 {
			errs = append(errs, fmt.Sprintf("//ldb:wire-body: bad argument %q", a))
			continue
		}
		switch k {
		case "size":
			wb.size = n
		case "legacy":
			wb.legacy = n
		default:
			errs = append(errs, fmt.Sprintf("//ldb:wire-body: unknown argument %q", a))
		}
	}
	if wb.size < 0 {
		errs = append(errs, "//ldb:wire-body needs size=<total bytes>")
	}
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return nil, append(errs, "//ldb:wire-body must annotate a struct type")
		}
		wb.spec = ts
		wb.obj = r.Info.Defs[ts.Name]
		for _, fld := range st.Fields.List {
			for _, nm := range fld.Names {
				wf := wireField{obj: r.Info.Defs[nm], field: fld, name: nm.Name, width: -1, off: -1}
				if tv, ok := wf.obj.(*types.Var); ok {
					wf.width = wireWidth(tv.Type())
				}
				if offArgs, _, ok := commentGroupArgs(fld.Comment, "off"); ok {
					wf.hasOff = true
					if len(offArgs) == 1 {
						if n, err := strconv.Atoi(offArgs[0]); err == nil && n >= 0 {
							wf.off = n
						}
					}
				}
				wb.fields = append(wb.fields, wf)
			}
		}
		break // one type per //ldb:wire-body declaration
	}
	if wb.spec == nil {
		return nil, append(errs, "//ldb:wire-body must annotate a type declaration")
	}
	return wb, errs
}

// wireWidth is the frozen wire width of a field type, or -1 when the
// type has no fixed width (slices, strings, structs...).
func wireWidth(t types.Type) int {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return -1
	}
	switch b.Kind() {
	case types.Int64, types.Uint64, types.Float64:
		return 8
	case types.Int32, types.Uint32, types.Float32:
		return 4
	case types.Int16, types.Uint16:
		return 2
	case types.Int8, types.Uint8, types.Bool:
		return 1
	}
	return -1
}

func (r *Repo) checkWireBody(wb *wireBody, kt *kindTable) []Diagnostic {
	var diags []Diagnostic
	add := func(n ast.Node, format string, args ...any) {
		path, line, col := r.Position(n.Pos())
		diags = append(diags, Diagnostic{
			Analyzer: "wirecompat", Path: path, Line: line, Col: col,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	if kt != nil {
		found := false
		for _, e := range kt.entries {
			if e.name == wb.name {
				found = true
				break
			}
		}
		if !found {
			add(wb.node, "wire body %q names no kind in the package's kind table", wb.name)
		}
	}
	off := 0
	legacyOK := wb.legacy == 0
	for _, wf := range wb.fields {
		if wf.width < 0 {
			add(wf.field, "wire body %q field %s has no fixed wire width", wb.name, wf.name)
			return diags // offsets below here are meaningless
		}
		switch {
		case !wf.hasOff:
			add(wf.field, "wire body %q field %s needs a trailing //ldb:off %d", wb.name, wf.name, off)
		case wf.off < 0:
			add(wf.field, "wire body %q field %s: //ldb:off needs one non-negative byte offset", wb.name, wf.name)
		case wf.off != off:
			add(wf.field, "wire body %q field %s declares offset %d but sits at %d: bodies are append-only (reordering or mid-struct insertion breaks shipped readers)",
				wb.name, wf.name, wf.off, off)
		}
		if off == wb.legacy {
			legacyOK = true
		}
		off += wf.width
	}
	if wb.size >= 0 && off != wb.size {
		add(wb.node, "wire body %q computes to %d bytes, directive says size=%d", wb.name, off, wb.size)
	}
	if wb.legacy != 0 {
		if wb.legacy >= off {
			add(wb.node, "wire body %q legacy=%d is not a strict prefix of its %d bytes", wb.name, wb.legacy, off)
		} else if !legacyOK {
			add(wb.node, "wire body %q legacy=%d does not land on a field boundary", wb.name, wb.legacy)
		}
	}
	return diags
}

// checkWireSymmetry finds the body's encoders and decoders in its
// package and requires each side to exist and to touch every field.
func (r *Repo) checkWireSymmetry(wb *wireBody) []Diagnostic {
	var diags []Diagnostic
	add := func(n ast.Node, format string, args ...any) {
		path, line, col := r.Position(n.Pos())
		diags = append(diags, Diagnostic{
			Analyzer: "wirecompat", Path: path, Line: line, Col: col,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	fieldObjs := make(map[types.Object]string)
	for _, wf := range wb.fields {
		if wf.obj != nil {
			fieldObjs[wf.obj] = wf.name
		}
	}
	if len(fieldObjs) == 0 {
		return nil
	}

	type side struct {
		fn      *ast.FuncDecl
		touched map[types.Object]bool
	}
	var encoders, decoders []side
	for _, f := range wb.pkg.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			touched := make(map[types.Object]bool)
			writes, reads := false, false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.Ident:
					if obj := r.Info.Uses[e]; obj != nil && fieldObjs[obj] != "" {
						touched[obj] = true
					}
				case *ast.CallExpr:
					if name, ok := byteOrderCall(r, e); ok {
						if strings.HasPrefix(name, "Put") || strings.HasPrefix(name, "Append") {
							writes = true
						} else {
							reads = true
						}
					}
				}
				return true
			})
			if len(touched) == 0 {
				continue
			}
			if writes {
				encoders = append(encoders, side{fd, touched})
			}
			if reads {
				decoders = append(decoders, side{fd, touched})
			}
		}
	}

	if len(encoders) == 0 {
		add(wb.node, "wire body %q has no encoder (no function touches its fields and writes binary.LittleEndian)", wb.name)
	}
	if len(decoders) == 0 {
		add(wb.node, "wire body %q has no decoder (no function touches its fields and reads binary.LittleEndian)", wb.name)
	}
	check := func(kind string, ss []side) {
		for _, s := range ss {
			for _, wf := range wb.fields {
				if wf.obj != nil && !s.touched[wf.obj] {
					add(s.fn, "%s %s of wire body %q misses field %s: both sides must cover every field",
						kind, s.fn.Name.Name, wb.name, wf.name)
				}
			}
		}
	}
	check("encoder", encoders)
	check("decoder", decoders)
	return diags
}

// byteOrderCall resolves call as a method on binary.LittleEndian or
// binary.BigEndian (PutUint32, Uint64, AppendUint16, ...), returning
// the method name.
func byteOrderCall(r *Repo, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := r.Info.Uses[inner.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "encoding/binary" {
		return "", false
	}
	if inner.Sel.Name != "LittleEndian" && inner.Sel.Name != "BigEndian" {
		return "", false
	}
	return sel.Sel.Name, true
}
