package analysis

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Summary is one analyzer's tally: findings that fail the run and
// findings suppressed by //ldb:allow. The allowed column is the §4.3
// table's analogue for exceptions — its growth across PRs is the
// health of the retargeting seam.
type Summary struct {
	Analyzer string `json:"analyzer"`
	Findings int    `json:"findings"`
	Allowed  int    `json:"allowed"`
}

// Summarize tallies diags per analyzer, in suite order, with the
// "allow" hygiene pseudo-analyzer last.
func Summarize(diags []Diagnostic) []Summary {
	order := make([]string, 0, len(Suite())+1)
	for _, a := range Suite() {
		order = append(order, a.Name)
	}
	order = append(order, "allow")
	byName := make(map[string]*Summary, len(order))
	out := make([]Summary, len(order))
	for i, name := range order {
		out[i] = Summary{Analyzer: name}
		byName[name] = &out[i]
	}
	for _, d := range diags {
		s, ok := byName[d.Analyzer]
		if !ok {
			continue
		}
		if d.Allowed {
			s.Allowed++
		} else {
			s.Findings++
		}
	}
	return out
}

// Format renders diags the way locstats renders the §4.3 table: the
// individual findings first (file:line:col, analyzer, message), then a
// summary table of findings and allowed exceptions per analyzer.
func Format(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintln(&b, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-14s %8s %8s\n", "analyzer", "findings", "allowed")
	total := Summary{Analyzer: "total"}
	for _, s := range Summarize(diags) {
		fmt.Fprintf(&b, "%-14s %8d %8d\n", s.Analyzer, s.Findings, s.Allowed)
		total.Findings += s.Findings
		total.Allowed += s.Allowed
	}
	fmt.Fprintf(&b, "%-14s %8d %8d\n", total.Analyzer, total.Findings, total.Allowed)
	return b.String()
}

// jsonReport is the -json output shape.
type jsonReport struct {
	Findings []Diagnostic `json:"findings"`
	Summary  []Summary    `json:"summary"`
}

// FormatJSON renders diags as the machine-readable report.
func FormatJSON(diags []Diagnostic) ([]byte, error) {
	rep := jsonReport{Findings: diags, Summary: Summarize(diags)}
	if rep.Findings == nil {
		rep.Findings = []Diagnostic{}
	}
	return json.MarshalIndent(rep, "", "  ")
}
