package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Fix support: the one mechanical repair the suite trusts itself to
// make is deleting a stale //ldb:allow — an annotation whose finding
// has since been fixed, which now suppresses nothing and would silently
// swallow the next genuine finding on its line. A whole-line allow
// comment is removed line and all; a trailing allow is truncated off
// its code line. Everything else the suite reports stays a human's job.

// A FileFix is one file's planned rewrite, kept as old and new bodies
// so the caller can show a diff before anything touches disk.
type FileFix struct {
	Path  string // repo-relative, slash-separated
	Old   []byte
	New   []byte
	Edits []LineEdit
}

// A LineEdit is one edited line: a whole-line allow deleted (NewText
// empty) or a trailing allow truncated off its code line.
type LineEdit struct {
	Line    int // 1-based, in the old file
	OldText string
	NewText string
	Deleted bool
}

// staleAllowMsg marks the hygiene diagnostics -fix acts on; it must
// match the message RunSuite emits.
const staleAllowMsg = "stale //ldb:allow"

// PlanFixes inspects a suite report and plans the removal of every
// stale //ldb:allow it flagged. Nothing is written; Apply commits a
// plan. The diagnostics must come from a RunSuite over the same tree.
func PlanFixes(root string, diags []Diagnostic) ([]FileFix, error) {
	stale := make(map[string][]int) // path → lines, 1-based
	for _, d := range diags {
		if d.Analyzer == "allow" && strings.HasPrefix(d.Msg, staleAllowMsg) {
			stale[d.Path] = append(stale[d.Path], d.Line)
		}
	}
	paths := make([]string, 0, len(stale))
	for p := range stale {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	var fixes []FileFix
	for _, path := range paths {
		abs := filepath.Join(root, filepath.FromSlash(path))
		old, err := os.ReadFile(abs)
		if err != nil {
			return nil, fmt.Errorf("fix %s: %w", path, err)
		}
		lines := strings.SplitAfter(string(old), "\n")
		doomed := make(map[int]bool)
		for _, ln := range stale[path] {
			doomed[ln] = true
		}
		var out strings.Builder
		var edits []LineEdit
		for i, line := range lines {
			n := i + 1
			if !doomed[n] {
				out.WriteString(line)
				continue
			}
			body, _, nl := strings.Cut(line, "\n")
			idx := strings.Index(body, directivePrefix+"allow")
			switch {
			case idx < 0:
				// The report and the file disagree (edited since the
				// run); leave the line alone rather than guess.
				out.WriteString(line)
				continue
			case strings.TrimSpace(body[:idx]) == "":
				// The allow is the whole line: delete it.
				edits = append(edits, LineEdit{Line: n, OldText: body, Deleted: true})
			default:
				// Trailing allow: keep the code, drop the comment.
				kept := strings.TrimRight(body[:idx], " \t")
				out.WriteString(kept)
				if nl {
					out.WriteString("\n")
				}
				edits = append(edits, LineEdit{Line: n, OldText: body, NewText: kept})
			}
		}
		if len(edits) == 0 {
			continue
		}
		fixes = append(fixes, FileFix{Path: path, Old: old, New: []byte(out.String()), Edits: edits})
	}
	return fixes, nil
}

// Diff renders a fix as a compact per-line diff for the dry run.
func (f FileFix) Diff() string {
	var b strings.Builder
	fmt.Fprintf(&b, "--- %s\n", f.Path)
	for _, e := range f.Edits {
		fmt.Fprintf(&b, "-%4d: %s\n", e.Line, e.OldText)
		if !e.Deleted {
			fmt.Fprintf(&b, "+%4d: %s\n", e.Line, e.NewText)
		}
	}
	return b.String()
}

// Apply writes the planned rewrites to disk, refusing any file that
// changed since the plan was made.
func Apply(root string, fixes []FileFix) error {
	for _, f := range fixes {
		abs := filepath.Join(root, filepath.FromSlash(f.Path))
		cur, err := os.ReadFile(abs)
		if err != nil {
			return fmt.Errorf("fix %s: %w", f.Path, err)
		}
		if string(cur) != string(f.Old) {
			return fmt.Errorf("fix %s: file changed since the analysis run; re-run ldbvet", f.Path)
		}
		if err := os.WriteFile(abs, f.New, 0o644); err != nil {
			return fmt.Errorf("fix %s: %w", f.Path, err)
		}
	}
	return nil
}
