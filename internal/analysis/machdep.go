package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"ldb/internal/arch"
)

// The machdep analyzer is the import/identifier-graph proof of the
// paper's §4/§6 claim: machine dependence stays inside the arch tree
// (the per-target packages hold both the debugger's four items of
// machine-dependent data and the simulators) and the compiler back
// ends. Everything else — core, bpt, frame, expr, symtab, nub, ps, the
// abstract memory — reaches a target only through the arch.Arch and
// machine interfaces. Concretely:
//
//   - no package outside ldb/internal/arch/... and ldb/internal/codegen
//     may import an ISA-specific package, except that a main package
//     may blank-import one to link a target in (the paper's analogue:
//     picking targets is the build's job, §6);
//   - no file outside those packages may spell an ISA opcode literal
//     (the break/no-op encodings from Config.Fingerprints);
//   - //ldb:target annotations (which tell locstats which target a
//     file in a shared package belongs to) must name a real target and
//     not restate what the import path already says.

// isaPackages maps each ISA-specific import path in the module to its
// target name: the subpackages of <mod>/internal/arch.
func (r *Repo) isaPackages() map[string]string {
	prefix := r.Mod + "/internal/arch/"
	out := make(map[string]string)
	for _, p := range r.Pkgs {
		if rest, ok := strings.CutPrefix(p.ImportPath, prefix); ok && !strings.Contains(rest, "/") {
			out[p.ImportPath] = rest
		}
	}
	return out
}

// machdepExempt reports whether p may hold machine-dependent imports
// and literals: the arch tree (interface plus per-target packages and
// simulators) and the compiler back ends.
func (r *Repo) machdepExempt(p *Pkg) bool {
	return p.ImportPath == r.Mod+"/internal/arch" ||
		strings.HasPrefix(p.ImportPath, r.Mod+"/internal/arch/") ||
		p.ImportPath == r.Mod+"/internal/codegen"
}

func runMachdep(r *Repo) []Diagnostic {
	var diags []Diagnostic
	isa := r.isaPackages()
	for _, p := range r.Pkgs {
		exempt := r.machdepExempt(p)
		isMain := len(p.Files) > 0 && p.Files[0].AST.Name.Name == "main"
		_, pkgIsISA := isa[p.ImportPath]
		for _, f := range p.Files {
			// ISA imports.
			if !exempt {
				for _, imp := range f.AST.Imports {
					ipath, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					target, ok := isa[ipath]
					if !ok {
						continue
					}
					if isMain && imp.Name != nil && imp.Name.Name == "_" {
						continue // linking a target in is the build's job
					}
					path, line, col := r.Position(imp.Pos())
					diags = append(diags, Diagnostic{
						Analyzer: "machdep", Path: path, Line: line, Col: col,
						Msg: fmt.Sprintf("machine-independent package %s imports %s-specific package %s; use the arch.Arch interface", p.ImportPath, target, ipath),
					})
				}
				// Opcode fingerprint literals.
				if len(r.Fingerprints) > 0 {
					ast.Inspect(f.AST, func(n ast.Node) bool {
						lit, ok := n.(*ast.BasicLit)
						if !ok || lit.Kind != token.INT {
							return true
						}
						v, err := strconv.ParseUint(lit.Value, 0, 64)
						if err != nil {
							return true
						}
						if what, hit := r.Fingerprints[v]; hit {
							path, line, col := r.Position(lit.Pos())
							diags = append(diags, Diagnostic{
								Analyzer: "machdep", Path: path, Line: line, Col: col,
								Msg: fmt.Sprintf("literal %s is the %s; machine-independent code must take opcodes from arch.Arch", lit.Value, what),
							})
						}
						return true
					})
				}
			}
			// //ldb:target hygiene.
			for _, d := range r.fileDirectives(f, "target") {
				switch {
				case d.analyzer == "":
					diags = append(diags, Diagnostic{
						Analyzer: "machdep", Path: d.path, Line: d.line, Col: 1,
						Msg: "//ldb:target needs a target name",
					})
				case !knownTarget(isa, d.analyzer):
					diags = append(diags, Diagnostic{
						Analyzer: "machdep", Path: d.path, Line: d.line, Col: 1,
						Msg: fmt.Sprintf("//ldb:target names unknown target %q", d.analyzer),
					})
				case pkgIsISA:
					diags = append(diags, Diagnostic{
						Analyzer: "machdep", Path: d.path, Line: d.line, Col: 1,
						Msg: fmt.Sprintf("redundant //ldb:target in ISA-specific package %s", p.ImportPath),
					})
				}
			}
		}
	}
	return diags
}

func knownTarget(isa map[string]string, name string) bool {
	for _, t := range isa {
		if t == name {
			return true
		}
	}
	return false
}

// FileTargets classifies every loaded file by the target it is
// specific to: files in an ISA package carry that package's target,
// files elsewhere carry their //ldb:target annotation, and everything
// else is "" (shared, machine-independent). locstats builds the §4.3
// table's columns from this map, so the table is analyzer-backed
// rather than path-guessed.
func FileTargets(r *Repo) map[string]string {
	isa := r.isaPackages()
	out := make(map[string]string)
	for _, p := range r.Pkgs {
		target := isa[p.ImportPath]
		for _, f := range p.Files {
			t := target
			if t == "" {
				if ds := r.fileDirectives(f, "target"); len(ds) > 0 && ds[0].analyzer != "" {
					t = ds[0].analyzer
				}
			}
			out[f.Path] = t
		}
	}
	return out
}

// ArchFingerprints derives machdep's opcode table from the registered
// architectures: each target's break and no-op encodings, read in the
// target's own byte order. Like the debugger itself, the analyzer is
// parameterized by machine-dependent data rather than containing any —
// this package never imports an ISA package; callers (cmd/ldbvet, the
// self-test) blank-import the targets to populate the registry.
// Values below 0x100 are dropped: one-byte opcodes (the VAX bpt, 0x03)
// collide with ordinary small constants.
func ArchFingerprints() map[uint64]string {
	fps := make(map[uint64]string)
	for _, name := range arch.Names() {
		a, ok := arch.Lookup(name)
		if !ok {
			continue
		}
		add := func(b []byte, what string) {
			if len(b) == 0 {
				return
			}
			v := uint64(0)
			if a.Order().String() == "LittleEndian" {
				for i := len(b) - 1; i >= 0; i-- {
					v = v<<8 | uint64(b[i]) //ldb:allow endian decodes registered arch data in the order that arch declared
				}
			} else {
				for _, c := range b {
					v = v<<8 | uint64(c)
				}
			}
			if v < 0x100 {
				return
			}
			if _, dup := fps[v]; !dup {
				fps[v] = fmt.Sprintf("%s %s", name, what)
			}
		}
		add(a.BreakInstr(), "break instruction")
		add(a.NopInstr(), "no-op instruction")
	}
	return fps
}
