package analysis_test

import (
	"strings"
	"testing"

	"ldb/internal/analysis"

	// The analyzers are parameterized by registered arch data; link the
	// targets in so ArchFingerprints sees all four.
	_ "ldb/internal/arch/m68k"
	_ "ldb/internal/arch/mips"
	_ "ldb/internal/arch/sparc"
	_ "ldb/internal/arch/vax"
)

// TestRepositoryIsClean is the tier-1 gate: the full analyzer suite
// over this repository must report no unsuppressed finding. A change
// that leaks machine dependence, drops a protocol kind's plumbing,
// hand-rolls byte order, or uncontains a handler fails the build here,
// exactly as `go run ./cmd/ldbvet ./...` would fail it.
func TestRepositoryIsClean(t *testing.T) {
	root, err := analysis.FindRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	repo, err := analysis.Load(analysis.Config{
		Root:         root,
		Fingerprints: analysis.ArchFingerprints(),
	})
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.RunSuite(repo)
	for _, d := range analysis.Failing(diags) {
		t.Error(d.String())
	}
	// The exception list is real and visible: the defined file formats
	// and the simulators' hot-path loads carry //ldb:allow endian.
	allowed := 0
	for _, d := range diags {
		if d.Allowed {
			allowed++
		}
	}
	if allowed == 0 {
		t.Error("expected some allowed findings (the //ldb:allow exception list); the allow matching is broken")
	}
}

// TestMachdepCatchesCoreArchImport is the issue's negative fixture:
// a module whose machine-independent internal/core imports
// internal/arch/mips must fail machdep.
func TestMachdepCatchesCoreArchImport(t *testing.T) {
	repo, err := analysis.Load(analysis.Config{Root: "testdata/machdep"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range analysis.Failing(analysis.RunSuite(repo)) {
		if d.Analyzer == "machdep" && d.Path == "internal/core/core.go" &&
			strings.Contains(d.Msg, "imports mips-specific package seam.test/internal/arch/mips") {
			found = true
		}
	}
	if !found {
		t.Error("machdep did not flag internal/core importing internal/arch/mips")
	}
}

// TestArchFingerprints pins that the fingerprint table is derived from
// the registry, drops one-byte opcodes, and knows the classic
// encodings machine-independent code must not spell.
func TestArchFingerprints(t *testing.T) {
	fps := analysis.ArchFingerprints()
	if len(fps) == 0 {
		t.Fatal("no fingerprints from the registered targets")
	}
	if what, ok := fps[0x4e71]; !ok || !strings.Contains(what, "m68k") {
		t.Errorf("m68k no-op 0x4e71 missing or misattributed: %q", what)
	}
	for v := range fps {
		if v < 0x100 {
			t.Errorf("one-byte opcode %#x should have been dropped", v)
		}
	}
}

// TestSuiteRoster pins the eight-analyzer roster in order: a dropped
// or renamed analyzer is a silent loss of coverage everywhere ldbvet
// runs.
func TestSuiteRoster(t *testing.T) {
	want := []string{"machdep", "wireproto", "endian", "recoverguard",
		"lockorder", "atomicity", "detstate", "wirecompat"}
	suite := analysis.Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, a.Name, want[i])
		}
	}
}

// TestLockCycleNeedsLockorder is the issue's teeth check: the lock
// cycle in the lockorder fixture is invisible to every other analyzer.
// Without the lockorder pass the fixture comes back clean — so the
// cycle findings exist, and all of them are lockorder's.
func TestLockCycleNeedsLockorder(t *testing.T) {
	repo, err := analysis.Load(analysis.Config{Root: "testdata/lockorder"})
	if err != nil {
		t.Fatal(err)
	}
	failing := analysis.Failing(analysis.RunSuite(repo))
	cycle, others := 0, 0
	for _, d := range failing {
		if d.Analyzer != "lockorder" {
			others++
			continue
		}
		if strings.Contains(d.Msg, "lock cycle") {
			cycle++
		}
	}
	if cycle == 0 {
		t.Error("the lockorder fixture's lock cycle went unreported")
	}
	if others != 0 {
		t.Errorf("%d findings from other analyzers: without lockorder the fixture would not be clean", others)
	}
}
