package analysis_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldb/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestGolden pins each analyzer's diagnostics over a fixture module
// designed to trip it. The full suite runs over every fixture — the
// goldens therefore also pin that the other analyzers stay quiet where
// they should. Regenerate with: go test ./internal/analysis -run Golden -update
func TestGolden(t *testing.T) {
	fixtures := []struct {
		name string
		// fingerprints plays ArchFingerprints for the fixture: the
		// machdep fixture hides the m68k no-op encoding in core.
		fingerprints map[uint64]string
	}{
		{name: "machdep", fingerprints: map[uint64]string{0x4e71: "m68k no-op instruction"}},
		{name: "wireproto"},
		{name: "endian"},
		{name: "recoverguard"},
		{name: "lockorder"},
		{name: "atomicity"},
		{name: "detstate"},
		{name: "wirecompat"},
		{name: "allow"},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			repo, err := analysis.Load(analysis.Config{
				Root:         filepath.Join("testdata", fx.name),
				Fingerprints: fx.fingerprints,
			})
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			for _, d := range analysis.RunSuite(repo) {
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
			got := b.String()
			golden := filepath.Join("testdata", fx.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("diagnostics changed\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}
