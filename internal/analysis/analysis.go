package analysis

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// A Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Analyzer is the reporting analyzer: "machdep", "wireproto",
	// "endian", "recoverguard", "lockorder", "atomicity", "detstate",
	// "wirecompat", or "allow" for annotation hygiene.
	Analyzer string `json:"analyzer"`
	// Path is the offending file, relative to the module root.
	Path string `json:"path"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
	// Allowed reports that a //ldb:allow annotation suppressed this
	// finding; AllowReason is the annotation's justification. Allowed
	// findings don't fail the run but are tallied in the summary.
	Allowed     bool   `json:"allowed,omitempty"`
	AllowReason string `json:"allowReason,omitempty"`
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", d.Path, d.Line, d.Col, d.Analyzer, d.Msg)
	if d.Allowed {
		s += fmt.Sprintf(" (allowed: %s)", d.AllowReason)
	}
	return s
}

// An Analyzer checks one property over the loaded repository.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Repo) []Diagnostic
}

// Suite is the fixed analyzer battery, in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{
		{
			Name: "machdep",
			Doc:  "machine dependence confined to arch tree, back ends, and simulators",
			Run:  runMachdep,
		},
		{
			Name: "wireproto",
			Doc:  "nub protocol kind table total: handler, encoder, validation, name per kind",
			Run:  runWireproto,
		},
		{
			Name: "endian",
			Doc:  "byte-order assumptions confined to arch tree and the wire layer",
			Run:  runEndian,
		},
		{
			Name: "recoverguard",
			Doc:  "nub dispatch handlers and resume paths run under panic containment",
			Run:  runRecoverguard,
		},
		{
			Name: "lockorder",
			Doc:  "module mutexes carry //ldb:lock ranks; acquired-while-held edges go strictly uprank, no cycles",
			Run:  runLockorder,
		},
		{
			Name: "atomicity",
			Doc:  "variables touched via sync/atomic are never read or written plainly anywhere in the module",
			Run:  runAtomicity,
		},
		{
			Name: "detstate",
			Doc:  "functions reachable from //ldb:deterministic roots avoid map-order, time, rand, %p, and live concurrent state",
			Run:  runDetstate,
		},
		{
			Name: "wirecompat",
			Doc:  "//ldb:wire-body reply structs are append-only with frozen offsets and symmetric encoders/decoders",
			Run:  runWirecompat,
		},
	}
}

// allowDirective is one parsed //ldb:allow comment.
type allowDirective struct {
	path     string
	line     int
	analyzer string
	reason   string
	used     bool
}

// directivePrefix introduces all of the suite's magic comments
// (//ldb:allow, //ldb:target, //ldb:kind-table, //ldb:dispatch-table,
// //ldb:contain, //ldb:lock, //ldb:deterministic, //ldb:wire-body,
// //ldb:off).
const directivePrefix = "//ldb:"

// fileDirectives scans a file's comments for //ldb: directives with the
// given verb ("allow", "target", ...) and returns them with positions.
func (r *Repo) fileDirectives(f *File, verb string) []allowDirective {
	var out []allowDirective
	want := directivePrefix + verb
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, want) {
				continue
			}
			rest := text[len(want):]
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //ldb:allowx
			}
			_, line, _ := r.Position(c.Pos())
			fields := strings.Fields(rest)
			d := allowDirective{path: f.Path, line: line}
			if len(fields) > 0 {
				d.analyzer = fields[0]
				d.reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
			}
			out = append(out, d)
		}
	}
	return out
}

// RunSuite runs every analyzer over the repository, applies the
// //ldb:allow annotations, and appends annotation-hygiene diagnostics
// (missing reasons, unknown analyzers, stale annotations that suppress
// nothing) under the pseudo-analyzer "allow". The result is sorted by
// file, line, column, analyzer.
func RunSuite(r *Repo) []Diagnostic {
	var diags []Diagnostic
	for _, a := range Suite() {
		diags = append(diags, a.Run(r)...)
	}

	known := make(map[string]bool)
	for _, a := range Suite() {
		known[a.Name] = true
	}
	var allows []*allowDirective
	var hygiene []Diagnostic
	for _, p := range r.Pkgs {
		for _, f := range p.Files {
			for _, d := range r.fileDirectives(f, "allow") {
				d := d
				switch {
				case d.analyzer == "":
					hygiene = append(hygiene, Diagnostic{
						Analyzer: "allow", Path: d.path, Line: d.line, Col: 1,
						Msg: "//ldb:allow needs an analyzer name and a reason",
					})
				case !known[d.analyzer]:
					hygiene = append(hygiene, Diagnostic{
						Analyzer: "allow", Path: d.path, Line: d.line, Col: 1,
						Msg: fmt.Sprintf("//ldb:allow names unknown analyzer %q", d.analyzer),
					})
				case d.reason == "":
					hygiene = append(hygiene, Diagnostic{
						Analyzer: "allow", Path: d.path, Line: d.line, Col: 1,
						Msg: fmt.Sprintf("//ldb:allow %s needs a reason", d.analyzer),
					})
				default:
					allows = append(allows, &d)
				}
			}
		}
	}

	// An allow suppresses findings by its analyzer on its own line
	// (trailing comment) or on the line immediately below (comment on
	// the line above the code).
	for i := range diags {
		d := &diags[i]
		for _, a := range allows {
			if a.analyzer == d.Analyzer && a.path == d.Path && (a.line == d.Line || a.line == d.Line-1) {
				d.Allowed = true
				d.AllowReason = a.reason
				a.used = true
			}
		}
	}
	for _, a := range allows {
		if !a.used {
			hygiene = append(hygiene, Diagnostic{
				Analyzer: "allow", Path: a.path, Line: a.line, Col: 1,
				Msg: fmt.Sprintf("stale //ldb:allow %s suppresses nothing", a.analyzer),
			})
		}
	}
	diags = append(diags, hygiene...)

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Msg < b.Msg
	})
	return diags
}

// Failing filters diags down to the ones that should fail a run:
// everything not suppressed by a valid //ldb:allow.
func Failing(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Allowed {
			out = append(out, d)
		}
	}
	return out
}

// markedDecls returns the top-level declarations in f whose doc
// comments carry the //ldb:<verb> directive.
func markedDecls(f *File, verb string) []ast.Decl {
	var out []ast.Decl
	want := directivePrefix + verb
	for _, decl := range f.AST.Decls {
		var doc *ast.CommentGroup
		switch d := decl.(type) {
		case *ast.GenDecl:
			doc = d.Doc
		case *ast.FuncDecl:
			doc = d.Doc
		}
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
				out = append(out, decl)
				break
			}
		}
	}
	return out
}
