// Package x sits inside the arch tree, where byte order may live; no
// finding here.
package x

import "encoding/binary"

// Read decodes in the target's declared order.
func Read(b []byte) uint32 { return binary.BigEndian.Uint32(b) }
