// Package codec hand-rolls byte order outside the arch tree — both
// forms the analyzer knows are present.
package codec

import "encoding/binary"

// ReadLE names a byte-order variable directly.
func ReadLE(b []byte) uint32 {
	return binary.LittleEndian.Uint32(b)
}

// ReadBE assembles a big-endian halfword by hand.
func ReadBE(b []byte) uint16 {
	return uint16(b[0])<<8 | uint16(b[1])
}
