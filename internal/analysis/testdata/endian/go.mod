module endian.test

go 1.22
