// Package pool is the lockorder fixture: three ranked mutexes, one
// correct nesting, one rank inversion that also closes a cycle, a
// branch where an early-unlock return must not fool the analyzer, a
// reentrant acquisition, and an unlock-then-relock helper that is
// legitimately clean.
package pool

import "sync"

// Registry is the lowest lock: taken first, always.
type Registry struct {
	mu    sync.Mutex //ldb:lock registry.mu 10
	names []string
}

// Cache nests inside the registry lock.
type Cache struct {
	mu      sync.Mutex //ldb:lock cache.mu 20
	entries int
}

// Journal is the innermost lock.
type Journal struct {
	mu   sync.Mutex //ldb:lock journal.mu 30
	rows int
}

// Broken carries a malformed directive: no rank.
type Broken struct {
	mu sync.Mutex //ldb:lock broken
}

// Good nests in increasing rank order: registry, then cache.
func Good(r *Registry, c *Cache) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c.mu.Lock()
	c.entries++
	c.mu.Unlock()
}

// Inverted takes the registry lock while holding the cache lock — a
// rank inversion, and together with Good a registry→cache→registry
// cycle.
func Inverted(r *Registry, c *Cache) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r.mu.Lock()
	r.names = nil
	r.mu.Unlock()
}

// EarlyReturn unlocks and returns on the fast path; on the slow path
// the journal lock is still held when the registry lock is taken. The
// early-unlock branch must not launder the held set.
func EarlyReturn(j *Journal, r *Registry, fast bool) {
	j.mu.Lock()
	if fast {
		j.mu.Unlock()
		return
	}
	r.mu.Lock()
	r.names = append(r.names, "slow")
	r.mu.Unlock()
	j.mu.Unlock()
}

// Reenter acquires the journal lock twice: self-deadlock.
func Reenter(j *Journal) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.mu.Lock()
	j.rows++
	j.mu.Unlock()
}

// WithRoom holds the registry lock across makeRoom.
func WithRoom(r *Registry, c *Cache) {
	r.mu.Lock()
	defer r.mu.Unlock()
	makeRoom(r, c)
}

// makeRoom drops the caller-held registry lock before touching the
// cache, then retakes it: no registry→cache edge exists, and the
// analyzer's release tracking must see that.
func makeRoom(r *Registry, c *Cache) {
	r.mu.Unlock()
	c.mu.Lock()
	c.entries = 0
	c.mu.Unlock()
	r.mu.Lock()
}
