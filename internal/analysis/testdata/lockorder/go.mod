module lockorder.test

go 1.22
