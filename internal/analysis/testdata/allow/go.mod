module allow.test

go 1.22
