// Package pkg exercises the //ldb:allow escape hatch and its hygiene
// rules.
package pkg

import "encoding/binary"

// ReadOne is suppressed with a reason: the finding survives in the
// output, marked allowed, and counts in the summary.
func ReadOne(b []byte) uint32 {
	return binary.LittleEndian.Uint32(b) //ldb:allow endian the fixture wire format is defined little-endian
}

// ReadTwo has an allow without a reason: the hygiene check fires and
// the underlying endian finding stays unsuppressed.
func ReadTwo(b []byte) uint32 {
	return binary.LittleEndian.Uint32(b) //ldb:allow endian
}

// ReadThree is preceded by an allow for the wrong analyzer, which
// therefore suppresses nothing and is reported stale.
//
//ldb:allow machdep this annotation matches no machdep finding
func ReadThree() {}
