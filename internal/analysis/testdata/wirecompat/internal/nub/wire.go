// Package nub is the wirecompat fixture: one append-only reply body
// done right, one with a field inserted mid-struct (the violation the
// analyzer exists for), and one whose legacy prefix misses every field
// boundary and whose codecs are missing.
package nub

import (
	"encoding/binary"
	"fmt"
)

// MsgKind identifies a message on the wire.
type MsgKind uint8

// Message kinds.
const (
	MStats MsgKind = iota + 1
	MBroken
)

type kindInfo struct {
	name    string
	request bool
}

// kinds is the protocol's single source of truth.
//
//ldb:kind-table
var kinds = map[MsgKind]kindInfo{
	MStats:  {name: "statsreply"},
	MBroken: {name: "brokenreply"},
}

// validate is the kind table's validation path.
func validate(k MsgKind) error {
	if _, ok := kinds[k]; !ok {
		return fmt.Errorf("unknown kind %d", k)
	}
	return nil
}

// StatsReply grew from 16 to 24 bytes by appending C; old readers
// parse the 16-byte prefix.
//
//ldb:wire-body statsreply size=24 legacy=16
type StatsReply struct {
	A int64 //ldb:off 0
	B int64 //ldb:off 8
	C int64 //ldb:off 16
}

func encodeStats(r StatsReply) []byte {
	b := make([]byte, 0, 24)
	for _, v := range []int64{r.A, r.B, r.C} {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	return b
}

func decodeStats(b []byte) StatsReply {
	v := func(i int) int64 { return int64(binary.LittleEndian.Uint64(b[i*8:])) }
	r := StatsReply{A: v(0), B: v(1)}
	if len(b) == 24 {
		r.C = v(2)
	}
	return r
}

// BrokenReply had N inserted between A and B: B still declares the
// offset it shipped with, but it moved — exactly what append-only
// forbids. The encoder also forgot the new field.
//
//ldb:wire-body brokenreply size=24
type BrokenReply struct {
	A int64 //ldb:off 0
	N int64 //ldb:off 8
	B int64 //ldb:off 8
}

func encodeBroken(r BrokenReply) []byte {
	b := make([]byte, 0, 24)
	for _, v := range []int64{r.A, r.B} {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	return b
}

func decodeBroken(b []byte) BrokenReply {
	v := func(i int) int64 { return int64(binary.LittleEndian.Uint64(b[i*8:])) }
	return BrokenReply{A: v(0), N: v(1), B: v(2)}
}

// OrphanReply names no kind, declares a legacy prefix off any field
// boundary, misses an //ldb:off, and has no codec at all.
//
//ldb:wire-body orphanreply size=16 legacy=12
type OrphanReply struct {
	A int64 //ldb:off 0
	B int64
}
