module wirecompat.test

go 1.22
