// Package nub exercises the panic-containment rules: handlers and
// resume paths may run only behind a deferred recover.
package nub

// Msg is one message.
type Msg struct{ Kind uint8 }

// handlers dispatches by kind.
//
//ldb:dispatch-table
var handlers [4]func(*Msg) *Msg

func init() {
	handlers[1] = handleOne
}

func handleOne(m *Msg) *Msg { return m }

// resume resumes the target and may panic on corrupt state.
//
//ldb:contain
func resume() {}

// safeDispatch is the protected path: the table read happens behind a
// deferred recover, so no finding.
func safeDispatch(m *Msg) (rep *Msg) {
	defer func() {
		if r := recover(); r != nil {
			rep = nil
		}
	}()
	if h := handlers[m.Kind]; h != nil {
		return h(m)
	}
	return nil
}

// guard wraps resume paths in a recover.
func guard(f func()) {
	defer func() {
		if r := recover(); r != nil {
			_ = r
		}
	}()
	f()
}

// good passes resume into the guard as a function value — allowed.
func good() { guard(resume) }

// alsoGood runs resume inside a literal passed to the guard — allowed.
func alsoGood() { guard(func() { resume() }) }

// bad calls resume with no containment — a finding.
func bad() { resume() }

// alsoBad calls a registered handler directly — a finding.
func alsoBad(m *Msg) *Msg { return handleOne(m) }

// worse reads the dispatch table outside any recover — a finding.
func worse(m *Msg) *Msg { return handlers[m.Kind](m) }

// leak lets resume escape containment as a bare reference — a finding.
func leak() func() { return resume }
