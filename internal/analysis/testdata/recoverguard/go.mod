module rg.test

go 1.22
