// Command ldb may blank-import a target: linking targets in is the
// build's job, so this import is not a finding.
package main

import _ "seam.test/internal/arch/mips"

func main() {}
