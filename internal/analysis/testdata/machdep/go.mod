module seam.test

go 1.22
