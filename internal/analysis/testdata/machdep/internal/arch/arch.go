// Package arch is the fixture's machine-independent seam.
package arch

// Arch is the interface machine-independent code must use.
type Arch interface {
	Name() string
}
