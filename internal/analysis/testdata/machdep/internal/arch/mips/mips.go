// Package mips is an ISA-specific package; it may hold opcodes.
package mips

// Break is the target's break instruction.
const Break = 0x0000000d

// Name names the target.
func Name() string { return "mips" }
