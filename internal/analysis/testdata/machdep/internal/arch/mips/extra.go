//ldb:target mips
package mips

// Redundant marks nothing: the //ldb:target above restates the
// package's own import path and must be flagged.
func Redundant() {}
