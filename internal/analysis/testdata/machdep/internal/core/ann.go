//ldb:target weird
package core

// Annotated carries a //ldb:target naming a target that does not
// exist in the module.
func Annotated() {}
