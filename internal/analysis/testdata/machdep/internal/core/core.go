// Package core is machine-independent and must not reach a target
// directly.
package core

import "seam.test/internal/arch/mips"

// Boot leaks machine dependence twice: the ISA import above and the
// opcode literal below (the m68k no-op, per the test's fingerprints).
func Boot() (string, int) {
	const nop = 0x4e71
	return mips.Name(), nop
}
