// Package replay is the detstate fixture: a //ldb:deterministic root
// whose call tree ranges a map unsorted, reads the clock, rolls dice
// two calls down, formats a pointer, and receives from a channel —
// next to a collect-then-sort walk, a statement-position counter bump,
// and a deadline arm that are all legitimately exempt.
package replay

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"
)

var served atomic.Int64

// Conn stands in for a net.Conn's deadline surface.
type Conn struct{ armed time.Time }

// SetReadDeadline records the deadline; its argument never reaches the
// transcript.
func (c *Conn) SetReadDeadline(t time.Time) { c.armed = t }

// Transcribe is the fixture's transcript root.
//
//ldb:deterministic
func Transcribe(c *Conn, m map[string]int, ch chan string) string {
	served.Add(1)                                  // exempt: unconsumed bump
	c.SetReadDeadline(time.Now().Add(time.Second)) // exempt: deadline arm
	out := ""
	for k := range m { // map order leaks into out
		out += k
	}
	for _, k := range SortedKeys(m) { // clean: collected and sorted
		out += k
	}
	out += roll()
	out += fmt.Sprintf("%p", c) // pointer value leaks
	out += <-ch                 // goroutine scheduling leaks
	return out
}

// roll is two calls from the root and still in deterministic scope.
func roll() string {
	if rand.Int()%2 == 0 {
		return time.Now().String()
	}
	return "steady"
}

// SortedKeys is the sanctioned map walk: collect, then sort.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Wall is dirty but unreachable from the root: out of scope.
func Wall() time.Time { return time.Now() }
