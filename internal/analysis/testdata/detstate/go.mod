module detstate.test

go 1.22
