package nub

import "fmt"

// Msg is one wire message.
type Msg struct {
	Kind MsgKind
}

// handlers dispatches requests by kind. MFetch is never registered.
//
//ldb:dispatch-table
var handlers [8]func(*Msg) *Msg

func init() {
	handlers[MHello] = handleHello
}

func handleHello(m *Msg) *Msg { return &Msg{Kind: MOK} }

// checkRequest is the validation path: it consults the kind table and
// returns an error for unknown kinds.
func checkRequest(m *Msg) error {
	if _, ok := kinds[m.Kind]; !ok {
		return fmt.Errorf("unexpected request %v", m.Kind)
	}
	return nil
}

// dispatch reads the dispatch table without calling checkRequest
// first — a finding.
func dispatch(m *Msg) *Msg {
	h := handlers[m.Kind]
	if h == nil {
		return &Msg{Kind: MError}
	}
	return h(m)
}

// describe switches over kinds with neither full coverage nor a
// default — a finding.
func describe(k MsgKind) string {
	switch k {
	case MHello:
		return "hello"
	case MFetch:
		return "fetch"
	}
	return ""
}
