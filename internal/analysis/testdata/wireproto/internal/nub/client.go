package nub

// Client is the debugger side of the fixture protocol.
type Client struct{}

// Hello encodes the one request kind that is fully plumbed; MFetch
// has no encoder anywhere.
func (c *Client) Hello() *Msg { return &Msg{Kind: MHello} }
