// Package nub is the fixture protocol: a kind table with deliberate
// holes, proving wireproto notices a kind added without plumbing.
package nub

import "fmt"

// MsgKind identifies a message on the wire.
type MsgKind uint8

// Message kinds. MOrphan was added without a kind-table entry.
const (
	MHello MsgKind = iota + 1
	MFetch
	MOrphan
	MOK
	MError
)

type kindInfo struct {
	name    string
	request bool
}

// kinds is the protocol's single source of truth.
//
//ldb:kind-table
var kinds = map[MsgKind]kindInfo{
	MHello: {name: "hello", request: true},
	MFetch: {name: "fetch", request: true},
	MOK:    {name: "ok"},
	MError: {name: ""},
}

func (k MsgKind) String() string {
	if info, ok := kinds[k]; ok {
		return info.name
	}
	return fmt.Sprintf("msg(%d)", uint8(k))
}
