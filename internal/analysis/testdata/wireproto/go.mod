module wire.test

go 1.22
