module atomicity.test

go 1.22
