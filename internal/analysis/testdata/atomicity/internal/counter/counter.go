// Package counter is the atomicity fixture: one field accessed through
// sync/atomic and then again plainly, one typed atomic copied by value,
// one escaped address, and plain fields that are legitimately plain.
package counter

import "sync/atomic"

// Stats mixes counter disciplines.
type Stats struct {
	hits  int64 // accessed via atomic.AddInt64: atomic forever after
	total int64 // never atomic: plain access is fine
	gauge atomic.Int64
}

// Bump is the sanctioning access: hits is an atomic field now.
func (s *Stats) Bump() {
	atomic.AddInt64(&s.hits, 1)
}

// Mixed reads and writes hits plainly — torn against Bump.
func (s *Stats) Mixed() int64 {
	s.hits++
	return s.hits
}

// Leak hands out the address of an atomic field to arbitrary code.
func Leak(s *Stats) *int64 {
	return &s.hits
}

// Copies reads the typed atomic by value, bypassing Load.
func Copies(s *Stats) int64 {
	g := s.gauge
	return g.Load()
}

// Fine touches only the plain field and uses the typed atomic through
// its methods.
func Fine(s *Stats) int64 {
	s.total++
	s.gauge.Store(s.total)
	return s.gauge.Load()
}
