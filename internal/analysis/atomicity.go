package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// The atomicity analyzer is a mixed-access detector: a variable that is
// ever touched atomically must be touched atomically everywhere. The
// service's counters (clock, eviction and rollback tallies, cache
// hit/miss pairs) are read by stats replies while request goroutines
// increment them; one plain read beside the atomic writes is a data
// race the race detector only catches when a soak happens to interleave
// it. The analyzer catches it structurally, over the whole module:
//
//   - a plain integer variable passed by address to a sync/atomic
//     function (atomic.AddInt64(&x, ...) and friends) is atomic; every
//     other read or write of it must also go through sync/atomic, and
//     taking its address outside a sync/atomic argument is flagged too
//     (the escape is how plain access sneaks in);
//   - a field or variable of a typed-atomic (atomic.Int64, Uint64,
//     Bool, Pointer, Value, ...) may only be used as a method-call
//     receiver or have its address taken; copying its value out (or
//     overwriting the whole struct) bypasses the atomic load/store
//     protocol and is flagged.
//
// There is no annotation to declare atomicity — touching a variable
// with sync/atomic IS the declaration; //ldb:allow remains the escape
// hatch for provably benign mixes (none exist in the seed tree).

func runAtomicity(r *Repo) []Diagnostic {
	if r.Info == nil {
		return nil
	}
	var diags []Diagnostic
	add := func(n ast.Node, format string, args ...any) {
		path, line, col := r.Position(n.Pos())
		diags = append(diags, Diagnostic{
			Analyzer: "atomicity", Path: path, Line: line, Col: col,
			Msg: fmt.Sprintf(format, args...),
		})
	}

	// Pass 1: collect plain variables used with sync/atomic functions.
	atomicObjs := make(map[types.Object]bool)
	sanctioned := make(map[ast.Node]bool) // the &x nodes inside atomic calls
	for _, p := range r.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !r.isAtomicFuncCall(call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op.String() != "&" {
						continue
					}
					if obj := r.addressedObj(un.X); obj != nil {
						atomicObjs[obj] = true
						sanctioned[un] = true
					}
				}
				return true
			})
		}
	}

	// Pass 2: flag every other access to those variables, and every
	// value use of a typed atomic.
	for _, p := range r.Pkgs {
		for _, f := range p.Files {
			r.atomicityFile(f, atomicObjs, sanctioned, add)
		}
	}
	return diags
}

// isAtomicFuncCall reports whether call invokes a function from
// sync/atomic (the Add/Load/Store/Swap/CompareAndSwap families).
func (r *Repo) isAtomicFuncCall(call *ast.CallExpr) bool {
	f, _ := r.funcObj(call.Fun).(*types.Func)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == "sync/atomic" && f.Type().(*types.Signature).Recv() == nil
}

// addressedObj resolves &X's operand to the variable being addressed:
// a plain identifier or the final field of a selector chain.
func (r *Repo) addressedObj(x ast.Expr) types.Object {
	switch e := ast.Unparen(x).(type) {
	case *ast.Ident:
		if v, ok := r.Info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := r.Info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// isTypedAtomic reports whether t is one of sync/atomic's typed
// atomics (Int32, Int64, Uint32, Uint64, Uintptr, Bool, Pointer,
// Value).
func isTypedAtomic(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// atomicityFile walks one file flagging mixed access. The walk carries
// the parent context needed to tell a method-call receiver (fine) from
// a value copy (race).
func (r *Repo) atomicityFile(f *File, atomicObjs map[types.Object]bool, sanctioned map[ast.Node]bool, add func(ast.Node, string, ...any)) {
	// use resolves an expression to the variable object it names.
	use := func(x ast.Expr) types.Object {
		switch e := ast.Unparen(x).(type) {
		case *ast.Ident:
			return r.Info.Uses[e]
		case *ast.SelectorExpr:
			return r.Info.Uses[e.Sel]
		}
		return nil
	}
	// typedAtomicUse reports whether x names a variable of typed-atomic
	// type (the type system stops most abuse; value copies remain).
	typedAtomicUse := func(x ast.Expr) (types.Object, bool) {
		obj := use(x)
		if v, ok := obj.(*types.Var); ok && isTypedAtomic(v.Type()) {
			return v, true
		}
		return nil, false
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch e := m.(type) {
			case *ast.Field, *ast.StructType, *ast.FuncType, *ast.InterfaceType:
				return false // declarations, not accesses
			case *ast.UnaryExpr:
				if e.Op.String() == "&" {
					if obj := r.addressedObj(e.X); obj != nil && atomicObjs[obj] && !sanctioned[e] {
						add(e, "address of atomics-guarded %s escapes sync/atomic: plain access becomes possible", obj.Name())
						return false
					}
					if _, ok := typedAtomicUse(e.X); ok {
						// &x.counter is fine: pointers preserve the
						// protocol. Walk the receiver chain only.
						if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
							walk(sel.X)
						}
						return false
					}
				}
			case *ast.CallExpr:
				if r.isAtomicFuncCall(e) {
					// Sanctioned &x arguments were collected in pass 1;
					// descend for everything else (nested calls).
					for _, a := range e.Args {
						if un, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && sanctioned[un] {
							continue
						}
						walk(a)
					}
					return false
				}
				// A method call on a typed atomic: x.counter.Load() —
				// the receiver selector is sanctioned.
				if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
					if _, ok := typedAtomicUse(sel.X); ok {
						if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
							walk(inner.X)
						}
						for _, a := range e.Args {
							walk(a)
						}
						return false
					}
				}
			case *ast.SelectorExpr:
				if obj, ok := typedAtomicUse(e); ok {
					add(e, "%s is a typed atomic: copying its value bypasses the atomic protocol (use Load)", obj.Name())
					walk(e.X)
					return false
				}
				if obj := r.Info.Uses[e.Sel]; obj != nil && atomicObjs[obj] {
					add(e, "plain access to %s, which is elsewhere accessed via sync/atomic", obj.Name())
					walk(e.X)
					return false
				}
			case *ast.Ident:
				if obj := r.Info.Uses[e]; obj != nil {
					if atomicObjs[obj] {
						add(e, "plain access to %s, which is elsewhere accessed via sync/atomic", obj.Name())
						return false
					}
					if v, ok := obj.(*types.Var); ok && isTypedAtomic(v.Type()) {
						add(e, "%s is a typed atomic: copying its value bypasses the atomic protocol (use Load)", obj.Name())
						return false
					}
				}
			}
			return true
		})
	}
	walk(f.AST)
}
