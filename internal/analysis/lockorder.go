package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The lockorder analyzer enforces a declared total order on the
// module's mutexes. The session-multiplexed debug service holds locks
// across layer boundaries (Service.mu while adopting into the shared
// TextCache, per-nub mu under the serve loop), and a cycle between any
// two of them is a rare, load-dependent deadlock — exactly the class of
// bug CI must catch structurally rather than by soak luck.
//
// Every mutex declared at module scope (struct field or package-level
// var) must carry a rank annotation:
//
//	//ldb:lock <name> <rank>
//
// on the field or var (doc comment or trailing comment). Lower ranks
// are outermost: a function may acquire a lock only while holding locks
// of strictly lower rank. The analyzer builds an acquired-while-held
// graph from Lock/RLock call sites:
//
//   - per function, a source-order walk tracks the held set; an
//     immediate Unlock/RUnlock releases, a deferred one holds to the
//     end of the function;
//   - an Unlock with no preceding Lock in the same body marks a
//     caller-held release (the makeRoomLocked drop-and-retake shape);
//   - per call site, the callee's transitive acquire set — minus the
//     caller-held locks the callee itself releases first — is acquired
//     while the current held set is held.
//
// Each edge must go strictly downrank-to-uprank; any violation is
// reported at the acquiring site, and any cycle in the graph is
// reported once as the full path. Function-local mutexes are leaves by
// construction and are ignored. The approximations are deliberate and
// one-sided where possible: an Unlock in a conditional branch
// optimistically releases (false negatives, never false positives),
// and dynamic dispatch through interfaces is invisible to the graph.

type lockEdge struct {
	from, to *lockDecl
	pos      token.Pos
}

// lockSummary is one function's lock behavior.
type lockSummary struct {
	directAcq map[types.Object]token.Pos // locks this body Locks
	acquires  map[types.Object]bool      // transitive closure over callees
	releases  map[types.Object]bool      // caller-held locks this body Unlocks
	calls     []lockCall
	edges     []lockEdge // direct Lock-while-held edges
}

type lockCall struct {
	callee types.Object
	held   []types.Object
	pos    token.Pos
}

func runLockorder(r *Repo) []Diagnostic {
	if r.Info == nil {
		return nil
	}
	var diags []Diagnostic
	add := func(pos token.Pos, format string, args ...any) {
		path, line, col := r.Position(pos)
		diags = append(diags, Diagnostic{
			Analyzer: "lockorder", Path: path, Line: line, Col: col,
			Msg: fmt.Sprintf(format, args...),
		})
	}

	locks := r.moduleLocks()
	byObj := make(map[types.Object]*lockDecl)
	byName := make(map[string]*lockDecl)
	for _, ld := range locks {
		switch {
		case ld.err != "":
			add(ld.pos.Pos(), "%s", ld.err)
		case !ld.ok:
			add(ld.pos.Pos(), "mutex %s has no //ldb:lock <name> <rank> annotation", ld.obj.Name())
		case byName[ld.name] != nil:
			add(ld.pos.Pos(), "//ldb:lock name %q already used at %s", ld.name, r.lockAt(byName[ld.name]))
		default:
			byName[ld.name] = ld
			byObj[ld.obj] = ld
		}
	}
	if len(byObj) == 0 {
		return diags
	}

	ix := r.moduleFuncs()
	sums := make(map[types.Object]*lockSummary)
	for _, df := range ix.list {
		sums[df.obj] = r.lockSummarize(df, byObj)
	}

	// Transitive acquire sets, to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, df := range ix.list {
			s := sums[df.obj]
			for _, c := range s.calls {
				cs := sums[c.callee]
				if cs == nil {
					continue
				}
				for obj := range cs.acquires {
					if !s.acquires[obj] {
						s.acquires[obj] = true
						changed = true
					}
				}
			}
		}
	}

	// Edges: direct Lock-while-held, plus call sites crossing the held
	// set with the callee's transitive acquires (minus the caller-held
	// locks the callee releases).
	var edges []lockEdge
	for _, df := range ix.list {
		s := sums[df.obj]
		edges = append(edges, s.edges...)
		for _, c := range s.calls {
			cs := sums[c.callee]
			if cs == nil || len(cs.acquires) == 0 {
				continue
			}
			for _, h := range c.held {
				if cs.releases[h] {
					continue
				}
				for obj := range cs.acquires {
					edges = append(edges, lockEdge{from: byObj[h], to: byObj[obj], pos: c.pos})
				}
			}
		}
	}

	// Deduplicate by (from, to), keeping the earliest site, and check
	// each surviving edge against the declared ranks.
	type pair struct{ from, to types.Object }
	best := make(map[pair]lockEdge)
	for _, e := range edges {
		k := pair{e.from.obj, e.to.obj}
		if old, ok := best[k]; !ok || e.pos < old.pos {
			best[k] = e
		}
	}
	var uniq []lockEdge
	for _, e := range best {
		uniq = append(uniq, e)
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i].pos < uniq[j].pos })
	adj := make(map[*lockDecl][]*lockDecl)
	for _, e := range uniq {
		adj[e.from] = append(adj[e.from], e.to)
		if e.to.rank <= e.from.rank {
			if e.to == e.from {
				add(e.pos, "lock %s (rank %d) acquired while already held", e.to.name, e.to.rank)
			} else {
				add(e.pos, "lock %s (rank %d) acquired while holding %s (rank %d): ranks must strictly increase",
					e.to.name, e.to.rank, e.from.name, e.from.rank)
			}
		}
	}

	// Cycle detection over the acquired-while-held graph. With clean
	// ranks no cycle can exist; this reports the full path when ranks
	// are violated in a loop, which is the actionable deadlock shape.
	diags = append(diags, r.lockCycles(locks, adj)...)
	return diags
}

func (r *Repo) lockAt(ld *lockDecl) string {
	path, line, _ := r.Position(ld.pos.Pos())
	return fmt.Sprintf("%s:%d", path, line)
}

// lockSummarize interprets one function body, tracking the held set
// through Lock/Unlock/RLock/RUnlock and recording module call sites
// with the held set at each. The walk is branch-sensitive: an Unlock
// on an early-return error path does not release the lock for the
// fall-through path (the openSession shape), a loop body's net effect
// is discarded (a loop may run zero times), and merge points keep the
// intersection of the branches' held sets — optimistic, so conditional
// releases trade false negatives for zero false positives.
func (r *Repo) lockSummarize(df *declFunc, byObj map[types.Object]*lockDecl) *lockSummary {
	s := &lockSummary{
		directAcq: make(map[types.Object]token.Pos),
		acquires:  make(map[types.Object]bool),
		releases:  make(map[types.Object]bool),
	}

	type heldSet = []types.Object
	idx := func(h heldSet, obj types.Object) int {
		for i, x := range h {
			if x == obj {
				return i
			}
		}
		return -1
	}
	intersect := func(a, b heldSet) heldSet {
		var out heldSet
		for _, x := range a {
			if idx(b, x) >= 0 {
				out = append(out, x)
			}
		}
		return out
	}

	// walkExpr visits an expression in evaluation order, mutating held.
	var walkExpr func(e ast.Expr, held *heldSet, inDefer bool)
	var walkStmt func(st ast.Stmt, held *heldSet) bool // true = terminates
	var walkBlock func(sts []ast.Stmt, held *heldSet) bool

	walkExpr = func(e ast.Expr, held *heldSet, inDefer bool) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(m ast.Node) bool {
			switch n := m.(type) {
			case *ast.FuncLit:
				// The literal usually runs within the current dynamic
				// extent (resumeAndLatch, sort.Slice): walk it with a
				// copy of the held set, discarding its net effect.
				inner := append(heldSet(nil), *held...)
				walkBlock(n.Body.List, &inner)
				return false
			case *ast.CallExpr:
				obj, kind := r.lockOp(n, byObj)
				if obj != nil {
					switch kind {
					case "Lock", "RLock":
						for _, h := range *held {
							s.edges = append(s.edges, lockEdge{from: byObj[h], to: byObj[obj], pos: n.Pos()})
						}
						if _, ok := s.directAcq[obj]; !ok {
							s.directAcq[obj] = n.Pos()
						}
						s.acquires[obj] = true
						if inDefer {
							break // a deferred Lock holds nothing now
						}
						if idx(*held, obj) < 0 {
							*held = append(*held, obj)
						}
					case "Unlock", "RUnlock":
						if inDefer {
							break // held to the end of the function
						}
						if i := idx(*held, obj); i >= 0 {
							*held = append((*held)[:i], (*held)[i+1:]...)
						} else if _, locked := s.directAcq[obj]; !locked {
							s.releases[obj] = true
						}
					}
					if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
						walkExpr(sel.X, held, inDefer)
					}
					for _, a := range n.Args {
						walkExpr(a, held, inDefer)
					}
					return false
				}
				if f := r.funcObj(n.Fun); f != nil {
					s.calls = append(s.calls, lockCall{
						callee: f, held: append(heldSet(nil), *held...), pos: n.Pos(),
					})
				}
				return true
			}
			return true
		})
	}

	walkStmt = func(st ast.Stmt, held *heldSet) bool {
		switch n := st.(type) {
		case nil:
			return false
		case *ast.BlockStmt:
			return walkBlock(n.List, held)
		case *ast.ExprStmt:
			walkExpr(n.X, held, false)
		case *ast.AssignStmt:
			for _, e := range n.Rhs {
				walkExpr(e, held, false)
			}
			for _, e := range n.Lhs {
				walkExpr(e, held, false)
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, sp := range gd.Specs {
					if vs, ok := sp.(*ast.ValueSpec); ok {
						for _, e := range vs.Values {
							walkExpr(e, held, false)
						}
					}
				}
			}
		case *ast.DeferStmt:
			walkExpr(n.Call, held, true)
		case *ast.GoStmt:
			// The goroutine does not inherit the caller's held set.
			empty := heldSet(nil)
			walkExpr(n.Call, &empty, false)
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				walkExpr(e, held, false)
			}
			return true
		case *ast.BranchStmt:
			return true // break/continue/goto leave the fall-through path
		case *ast.IfStmt:
			walkStmt(n.Init, held)
			walkExpr(n.Cond, held, false)
			thenHeld := append(heldSet(nil), *held...)
			thenTerm := walkBlock(n.Body.List, &thenHeld)
			elseHeld := append(heldSet(nil), *held...)
			elseTerm := false
			if n.Else != nil {
				elseTerm = walkStmt(n.Else, &elseHeld)
			}
			switch {
			case thenTerm && elseTerm:
				return true
			case thenTerm:
				*held = elseHeld
			case elseTerm:
				*held = thenHeld
			default:
				*held = intersect(thenHeld, elseHeld)
			}
		case *ast.ForStmt:
			walkStmt(n.Init, held)
			walkExpr(n.Cond, held, false)
			body := append(heldSet(nil), *held...)
			walkBlock(n.Body.List, &body)
			walkStmt(n.Post, &body)
			// Net effect discarded: the loop may run zero times.
		case *ast.RangeStmt:
			walkExpr(n.X, held, false)
			body := append(heldSet(nil), *held...)
			walkBlock(n.Body.List, &body)
		case *ast.SwitchStmt:
			walkStmt(n.Init, held)
			walkExpr(n.Tag, held, false)
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					body := append(heldSet(nil), *held...)
					for _, e := range cc.List {
						walkExpr(e, &body, false)
					}
					walkBlock(cc.Body, &body)
				}
			}
		case *ast.TypeSwitchStmt:
			walkStmt(n.Init, held)
			walkStmt(n.Assign, held)
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					body := append(heldSet(nil), *held...)
					walkBlock(cc.Body, &body)
				}
			}
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					body := append(heldSet(nil), *held...)
					walkStmt(cc.Comm, &body)
					walkBlock(cc.Body, &body)
				}
			}
		case *ast.LabeledStmt:
			return walkStmt(n.Stmt, held)
		case *ast.SendStmt:
			walkExpr(n.Chan, held, false)
			walkExpr(n.Value, held, false)
		case *ast.IncDecStmt:
			walkExpr(n.X, held, false)
		}
		return false
	}

	walkBlock = func(sts []ast.Stmt, held *heldSet) bool {
		for _, st := range sts {
			if walkStmt(st, held) {
				return true
			}
		}
		return false
	}

	held := heldSet(nil)
	walkBlock(df.decl.Body.List, &held)
	return s
}

// lockOp resolves call as a mutex operation on an annotated lock,
// returning the lock object and the method name ("Lock", "Unlock",
// "RLock", "RUnlock"), or nil.
func (r *Repo) lockOp(call *ast.CallExpr, byObj map[types.Object]*lockDecl) (types.Object, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, ""
	}
	var obj types.Object
	switch x := sel.X.(type) {
	case *ast.Ident:
		obj = r.Info.Uses[x]
	case *ast.SelectorExpr:
		obj = r.Info.Uses[x.Sel]
	}
	if obj == nil || byObj[obj] == nil {
		return nil, ""
	}
	switch op {
	case "TryLock":
		op = "Lock"
	case "TryRLock":
		op = "RLock"
	}
	return obj, op
}

// lockCycles reports each cycle in the acquired-while-held graph once.
func (r *Repo) lockCycles(locks []*lockDecl, adj map[*lockDecl][]*lockDecl) []Diagnostic {
	var diags []Diagnostic
	state := make(map[*lockDecl]int) // 0 unvisited, 1 on stack, 2 done
	var stack []*lockDecl
	reported := make(map[*lockDecl]bool)

	var visit func(ld *lockDecl)
	visit = func(ld *lockDecl) {
		state[ld] = 1
		stack = append(stack, ld)
		next := append([]*lockDecl(nil), adj[ld]...)
		sort.Slice(next, func(i, j int) bool { return next[i].name < next[j].name })
		for _, to := range next {
			switch state[to] {
			case 0:
				visit(to)
			case 1:
				// Cycle: the stack from `to` to ld, closed back to `to`.
				// A self-edge already gets its own "acquired while
				// already held" diagnostic; a one-node cycle adds noise.
				if to == ld {
					continue
				}
				if !reported[to] {
					reported[to] = true
					i := len(stack) - 1
					for i >= 0 && stack[i] != to {
						i--
					}
					path := ""
					for _, n := range stack[i:] {
						path += n.name + " -> "
					}
					path += to.name
					p, line, col := r.Position(to.pos.Pos())
					diags = append(diags, Diagnostic{
						Analyzer: "lockorder", Path: p, Line: line, Col: col,
						Msg: fmt.Sprintf("lock cycle: %s", path),
					})
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[ld] = 2
	}
	for _, ld := range locks {
		if ld.ok && state[ld] == 0 {
			visit(ld)
		}
	}
	return diags
}
