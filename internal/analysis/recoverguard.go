package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// The recoverguard analyzer keeps the crash-proof-nub property (§4.2's
// "the nub must not take the target down with it") from eroding as
// message types are added. The nub package declares its containment
// structure:
//
//   - the //ldb:dispatch-table var maps kinds to handler functions;
//   - //ldb:contain marks functions that resume the target and so may
//     panic on corrupted process state (runAndLatch, stepAndLatch).
//
// A function is *protected* if it defers a recover (the safeHandle /
// resumeAndLatch shape). The analyzer then requires:
//
//   - every read of the dispatch table sits inside a protected
//     function — handlers execute only behind a recover;
//   - every call to, or reference to, a contained function or a
//     registered handler happens inside a protected or contained
//     function, inside a function literal passed as an argument to a
//     call of one (the n.resumeAndLatch(func(){...}) pattern), as a
//     direct argument of such a call (n.resumeAndLatch(n.runAndLatch)),
//     or in the dispatch table's registration assignments.
//
// New kinds therefore cannot grow an uncontained crash path: wireproto
// forces the handler into the table, and recoverguard forces the table
// behind the recover.

func runRecoverguard(r *Repo) []Diagnostic {
	if r.Info == nil {
		return nil
	}
	var diags []Diagnostic
	for _, p := range r.Pkgs {
		diags = append(diags, r.recoverguardPkg(p)...)
	}
	return diags
}

func (r *Repo) recoverguardPkg(p *Pkg) []Diagnostic {
	protected := make(map[types.Object]bool)
	contained := make(map[types.Object]bool)
	var tableObj types.Object
	for _, f := range p.Files {
		for _, decl := range f.AST.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil && deferredRecover(fd.Body) {
				protected[r.Info.Defs[fd.Name]] = true
			}
		}
		for _, decl := range markedDecls(f, "contain") {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				contained[r.Info.Defs[fd.Name]] = true
			}
		}
		for _, decl := range markedDecls(f, "dispatch-table") {
			if gd, ok := decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == 1 {
						tableObj = r.Info.Defs[vs.Names[0]]
					}
				}
			}
		}
	}
	if tableObj == nil && len(contained) == 0 {
		return nil
	}

	// Handlers registered into the dispatch table.
	registered := make(map[types.Object]bool)
	if tableObj != nil {
		for _, f := range p.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, lhs := range as.Lhs {
					if r.tableIndex(lhs, tableObj) == nil || i >= len(as.Rhs) {
						continue
					}
					if h := r.funcObj(as.Rhs[i]); h != nil {
						registered[h] = true
					}
				}
				return true
			})
		}
	}

	guarded := func(obj types.Object) bool { return obj != nil && (protected[obj] || contained[obj]) }
	restricted := func(obj types.Object) bool {
		return obj != nil && (contained[obj] || registered[obj])
	}

	var diags []Diagnostic
	add := func(n ast.Node, format string, args ...any) {
		path, line, col := r.Position(n.Pos())
		diags = append(diags, Diagnostic{
			Analyzer: "recoverguard", Path: path, Line: line, Col: col,
			Msg: fmt.Sprintf(format, args...),
		})
	}

	// walk visits nodes tracking whether the current position runs
	// under containment (inGuard). It handles the exempt shapes —
	// registration writes, guarded-call arguments — before generic
	// descent, so each violation is reported exactly once.
	var walk func(n ast.Node, inGuard bool)
	walk = func(n ast.Node, inGuard bool) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			switch e := m.(type) {
			case *ast.AssignStmt:
				for _, lhs := range e.Lhs {
					if ix := r.tableIndex(lhs, tableObj); ix != nil {
						// Registration write: the table index is not a read,
						// and the handler value is sanctioned here.
						walk(ix.Index, inGuard)
						continue
					}
					walk(lhs, inGuard)
				}
				for i, rhs := range e.Rhs {
					if i < len(e.Lhs) && r.tableIndex(e.Lhs[i], tableObj) != nil {
						if h := r.funcObj(rhs); h != nil {
							continue // the registration itself
						}
					}
					walk(rhs, inGuard)
				}
				return false
			case *ast.CallExpr:
				callee := r.funcObj(e.Fun)
				calleeGuarded := guarded(callee)
				if restricted(callee) && !inGuard {
					add(e, "call to %s outside panic containment: route it through the recover-protected resume or dispatch path", callee.Name())
				}
				// Walk the callee expression's receiver, but not the
				// callee reference itself (handled above).
				if sel, ok := e.Fun.(*ast.SelectorExpr); ok && callee != nil {
					walk(sel.X, inGuard)
				} else if callee == nil {
					walk(e.Fun, inGuard)
				}
				for _, arg := range e.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						walk(lit.Body, inGuard || calleeGuarded)
						continue
					}
					if h := r.funcObj(arg); h != nil {
						if restricted(h) && !calleeGuarded && !inGuard {
							add(arg, "reference to %s escapes panic containment: pass it only to the recover-protected resume or dispatch path", h.Name())
						}
						continue
					}
					walk(arg, inGuard)
				}
				return false
			case *ast.FuncLit:
				walk(e.Body, inGuard)
				return false
			case *ast.IndexExpr:
				if r.tableIndexExpr(e, tableObj) && !inGuard {
					add(e, "dispatch table read outside a recover-protected function")
				}
			case *ast.Ident:
				if obj := r.Info.Uses[e]; restricted(obj) && !inGuard {
					add(e, "reference to %s outside panic containment", obj.Name())
				}
			case *ast.SelectorExpr:
				if obj := r.Info.Uses[e.Sel]; restricted(obj) && !inGuard {
					add(e, "reference to %s outside panic containment", obj.Name())
				}
				walk(e.X, inGuard)
				return false
			}
			return true
		})
	}

	for _, f := range p.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walk(fd.Body, guarded(r.Info.Defs[fd.Name]))
		}
	}
	return diags
}

// tableIndex returns expr as an index into the dispatch table, or nil.
func (r *Repo) tableIndex(expr ast.Expr, tableObj types.Object) *ast.IndexExpr {
	ix, ok := expr.(*ast.IndexExpr)
	if !ok || !r.tableIndexExpr(ix, tableObj) {
		return nil
	}
	return ix
}

func (r *Repo) tableIndexExpr(ix *ast.IndexExpr, tableObj types.Object) bool {
	if tableObj == nil {
		return false
	}
	base, ok := ix.X.(*ast.Ident)
	return ok && r.Info.Uses[base] == tableObj
}

// deferredRecover reports whether body defers a function literal that
// calls recover — the containment idiom.
func deferredRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		lit, ok := ds.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
					found = true
				}
			}
			return true
		})
		return true
	})
	return found
}
