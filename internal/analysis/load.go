// Package analysis is ldb's static-analysis suite: a stdlib-only
// driver (go/parser, go/ast, go/types — nothing outside the standard
// library) plus eight analyzers. The first four mechanize the paper's
// central claim — §4 and §6 argue that all machine dependence is
// confined to a few tiny per-target modules; until now the repository
// only *counted* that claim (internal/locstats reproduces the §4.3
// table) without *checking* it. The suite turns the
// machine-independent/machine-dependent boundary from a convention into
// an enforced interface, in the spirit of Hanson's follow-up, "A
// Machine-Independent Debugger—Revisited":
//
//   - machdep: no package outside the arch tree and the back ends may
//     import an ISA-specific package or spell an ISA opcode literal;
//     the machine-independent layers reach targets only through the
//     arch.Arch and machine interfaces.
//   - wireproto: the nub protocol's kind table is total — every kind
//     has a name, every request kind has a server dispatch arm, a
//     client encoder, and a pre-dispatch validation path, and every
//     switch over message kinds is exhaustive or defaults safely.
//   - endian: byte-order assumptions (binary.BigEndian/LittleEndian
//     and shift-assembled multibyte loads) appear only in the arch
//     tree and the defined-little-endian wire layer.
//   - recoverguard: every handler reachable from the nub's dispatch
//     table, and every target-resume path, runs under the panic
//     containment added for the crash-proof nub.
//
// The other four hold the concurrency and determinism invariants that
// arrived with the multi-session service and the differential corpus:
//
//   - lockorder: mutexes declared with //ldb:lock <name> <rank> are
//     acquired in strictly increasing rank order, never reentrantly,
//     and the acquired-while-held graph is acyclic.
//   - atomicity: a field accessed through sync/atomic anywhere is
//     accessed through it everywhere — no plain reads or writes, no
//     escaped addresses, no typed-atomic value copies.
//   - detstate: call trees rooted at //ldb:deterministic functions
//     never leak map iteration order, wall-clock time, randomness,
//     pointer values, live atomic counters, or goroutine scheduling
//     into replayed output.
//   - wirecompat: //ldb:wire-body reply structs are append-only, with
//     frozen //ldb:off field offsets and one symmetric encoder/decoder
//     pair both sides of the wire share.
//
// Violations are suppressed, one line at a time, by an annotation that
// is itself reported in the suite's summary:
//
//	//ldb:allow <analyzer> <reason>
//
// Like the paper's debugger, the analyzers are parameterized by
// machine-dependent *data*, not code: the opcode fingerprints machdep
// hunts for are derived from the registered arch descriptions by the
// caller (cmd/ldbvet, the self-test) and passed in as a table.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Config names the repository under analysis.
type Config struct {
	// Root is the module root directory (the one holding go.mod).
	Root string
	// Mod is the module import path ("ldb" for this repository).
	Mod string
	// Fingerprints maps ISA opcode values (break and no-op encodings,
	// decoded in the target byte order) to a description like
	// "sparc break instruction". The machdep analyzer flags integer
	// literals with these values outside the machine-dependent tree.
	// Derive it with ArchFingerprints after linking the targets in.
	Fingerprints map[uint64]string
}

// File is one parsed, non-test source file.
type File struct {
	// Path is the file's path relative to Root, slash-separated.
	Path string
	AST  *ast.File
}

// Pkg is one loaded package.
type Pkg struct {
	// ImportPath is the package's import path within the module.
	ImportPath string
	// Dir is the package directory relative to Root ("" for the root).
	Dir   string
	Files []*File
	// Types is the type-checked package; nil after Parse (parse-only
	// loads, used by locstats, which needs only the package graph).
	Types *types.Package
}

// Repo is a loaded repository, ready for the analyzers.
type Repo struct {
	Config
	Fset *token.FileSet
	// Pkgs is every package in the module, sorted by import path.
	Pkgs []*Pkg
	// Info holds type information for every loaded file (nil after
	// Parse). A single shared Info is safe: its maps are keyed by AST
	// nodes, which are unique across packages.
	Info *types.Info

	byPath map[string]*Pkg
}

// ModulePath reads the module import path from root's go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// FindRoot locates the module root (the directory containing go.mod)
// at or above dir.
func FindRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

// Parse loads and parses every package in the module without type
// checking. Pkg.Types and Repo.Info are nil. This is enough for the
// package graph and the file classification locstats consumes.
func Parse(cfg Config) (*Repo, error) {
	return load(cfg, false)
}

// Load loads, parses, and type-checks every package in the module.
// Test files are excluded throughout: the boundary being enforced is
// the shipped debugger's, and tests exercise the targets by design.
func Load(cfg Config) (*Repo, error) {
	return load(cfg, true)
}

func load(cfg Config, check bool) (*Repo, error) {
	if cfg.Mod == "" {
		mod, err := ModulePath(cfg.Root)
		if err != nil {
			return nil, err
		}
		cfg.Mod = mod
	}
	r := &Repo{
		Config: cfg,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Pkg),
	}
	dirs, err := packageDirs(cfg.Root)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		p, err := r.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if p != nil {
			r.Pkgs = append(r.Pkgs, p)
			r.byPath[p.ImportPath] = p
		}
	}
	sort.Slice(r.Pkgs, func(i, j int) bool { return r.Pkgs[i].ImportPath < r.Pkgs[j].ImportPath })
	if !check {
		return r, nil
	}
	r.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	im := &moduleImporter{
		repo: r,
		std:  importer.ForCompiler(r.Fset, "source", nil),
		pkgs: make(map[string]*types.Package),
	}
	for _, p := range r.Pkgs {
		if _, err := im.check(p); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// packageDirs lists every directory under root holding Go source,
// relative to root, skipping testdata trees, hidden directories, and
// vendored code. The walk order is sorted, so loads are deterministic.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			rel, err := filepath.Rel(root, filepath.Dir(path))
			if err != nil {
				return err
			}
			rel = filepath.ToSlash(rel)
			if rel == "." {
				rel = ""
			}
			if len(dirs) == 0 || dirs[len(dirs)-1] != rel {
				dirs = append(dirs, rel)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || d != dirs[i-1] {
			out = append(out, d)
		}
	}
	return out, nil
}

// parseDir parses one package directory (nil if it holds no non-test
// Go files after all).
func (r *Repo) parseDir(dir string) (*Pkg, error) {
	abs := filepath.Join(r.Root, filepath.FromSlash(dir))
	ents, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	importPath := r.Mod
	if dir != "" {
		importPath = r.Mod + "/" + dir
	}
	p := &Pkg{ImportPath: importPath, Dir: dir}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(r.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		rel := name
		if dir != "" {
			rel = dir + "/" + name
		}
		p.Files = append(p.Files, &File{Path: rel, AST: f})
	}
	if len(p.Files) == 0 {
		return nil, nil
	}
	return p, nil
}

// moduleImporter resolves the module's own import paths from the
// parsed tree and everything else (the standard library) through the
// stdlib source importer, so the whole load needs no compiled export
// data and no tooling outside the standard library.
type moduleImporter struct {
	repo     *Repo
	std      types.Importer
	pkgs     map[string]*types.Package
	checking map[string]bool
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if path == im.repo.Mod || strings.HasPrefix(path, im.repo.Mod+"/") {
		p, ok := im.repo.byPath[path]
		if !ok {
			return nil, fmt.Errorf("analysis: import %q not found in module", path)
		}
		return im.check(p)
	}
	return im.std.Import(path)
}

func (im *moduleImporter) check(p *Pkg) (*types.Package, error) {
	if tp, ok := im.pkgs[p.ImportPath]; ok {
		return tp, nil
	}
	if im.checking == nil {
		im.checking = make(map[string]bool)
	}
	if im.checking[p.ImportPath] {
		return nil, fmt.Errorf("analysis: import cycle through %q", p.ImportPath)
	}
	im.checking[p.ImportPath] = true
	defer delete(im.checking, p.ImportPath)
	files := make([]*ast.File, len(p.Files))
	for i, f := range p.Files {
		files[i] = f.AST
	}
	conf := types.Config{Importer: im}
	tp, err := conf.Check(p.ImportPath, im.repo.Fset, files, im.repo.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", p.ImportPath, err)
	}
	p.Types = tp
	im.pkgs[p.ImportPath] = tp
	return tp, nil
}

// Position returns pos as (file-relative-to-root, line, column).
func (r *Repo) Position(pos token.Pos) (string, int, int) {
	p := r.Fset.Position(pos)
	rel, err := filepath.Rel(r.Root, p.Filename)
	if err != nil {
		rel = p.Filename
	}
	return filepath.ToSlash(rel), p.Line, p.Column
}
