package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// The detstate analyzer enforces byte determinism on the paths that
// promise it: checkpoint encoding (a passivated session must resurrect
// from the same bytes anywhere), transcript emission (cross-ISA
// differential tests diff transcripts byte-for-byte), and corpus
// fingerprinting (content-hash up-to-date checks). A function opts in
// with:
//
//	//ldb:deterministic
//
// on its declaration; the analyzer walks everything reachable from the
// marked roots over the direct call graph and flags the sources of
// nondeterminism Go makes easy to reach for:
//
//   - ranging over a map, unless the function later sorts what it
//     collected (the collect-then-sort idiom) or the loop body only
//     rebuilds another map (every statement assigns through an index
//     expression — order-insensitive);
//   - time.Now / time.Since / time.Until, and any call into math/rand
//     or math/rand/v2;
//   - fmt verbs that print addresses (%p) with a constant format;
//   - reads of live concurrent state: typed-atomic Load and friends,
//     channel receives, and select statements — a deterministic
//     encoder must consume a snapshot, not a moving counter.
//
// The approximation is direct-call reachability: dynamic dispatch
// through interface values is invisible, so a root that launders its
// work through an interface should mark the concrete implementations
// too.

func runDetstate(r *Repo) []Diagnostic {
	if r.Info == nil {
		return nil
	}
	ix := r.moduleFuncs()
	var roots []*declFunc
	for _, p := range r.Pkgs {
		for _, f := range p.Files {
			for _, decl := range markedDecls(f, "deterministic") {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					if df := ix.byObj[r.Info.Defs[fd.Name]]; df != nil {
						roots = append(roots, df)
					}
				}
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}
	scope := r.reachable(ix, roots)

	var diags []Diagnostic
	var inScope []*declFunc
	for obj := range scope {
		inScope = append(inScope, ix.byObj[obj])
	}
	sort.Slice(inScope, func(i, j int) bool {
		return inScope[i].decl.Pos() < inScope[j].decl.Pos()
	})
	for _, df := range inScope {
		root := scope[df.obj]
		add := func(n ast.Node, format string, args ...any) {
			path, line, col := r.Position(n.Pos())
			msg := fmt.Sprintf(format, args...)
			if root.obj != df.obj {
				msg += fmt.Sprintf(" (deterministic via root %s)", root.obj.Name())
			}
			diags = append(diags, Diagnostic{
				Analyzer: "detstate", Path: path, Line: line, Col: col, Msg: msg,
			})
		}
		r.detstateFunc(df, add)
	}
	return diags
}

func (r *Repo) detstateFunc(df *declFunc, add func(ast.Node, string, ...any)) {
	body := df.decl.Body
	sortsLater := bodyCallsSort(r, body)

	// Value-sensitivity: a statement-position atomic call (a bare
	// counter.Add(1) bump) writes bookkeeping without leaking anything
	// into the function's output; only a consumed atomic value is a
	// determinism hazard. Deadline arms (SetReadDeadline(time.Now()...))
	// pace the wire without reaching content, so time.Now inside them
	// is exempt too.
	exempt := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(e.X).(*ast.CallExpr); ok {
				exempt[call] = true
			}
		case *ast.DeferStmt:
			exempt[e.Call] = true
		case *ast.CallExpr:
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
					for _, a := range e.Args {
						ast.Inspect(a, func(m ast.Node) bool {
							if c, ok := m.(*ast.CallExpr); ok {
								exempt[c] = true
							}
							return true
						})
					}
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.RangeStmt:
			t := r.Info.Types[e.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				if !sortsLater && !mapRebuildOnly(e.Body) {
					add(e, "map iteration order leaks into deterministic output: collect keys and sort, or rebuild into a map")
				}
			}
		case *ast.CallExpr:
			f, _ := r.funcObj(e.Fun).(*types.Func)
			if f != nil && f.Pkg() != nil {
				switch path := f.Pkg().Path(); {
				case path == "time" && (f.Name() == "Now" || f.Name() == "Since" || f.Name() == "Until"):
					if exempt[ast.Node(e)] {
						break
					}
					add(e, "time.%s in deterministic scope", f.Name())
				case path == "math/rand" || path == "math/rand/v2":
					add(e, "%s.%s in deterministic scope", path, f.Name())
				case path == "fmt":
					if lit := formatLiteral(r, e, f.Name()); lit != "" && strings.Contains(lit, "%p") {
						add(e, "fmt.%s formats a pointer (%%p): addresses are not deterministic", f.Name())
					}
				case path == "sync/atomic":
					// Both atomic.AddInt64(&x, ...) and typed-atomic
					// methods (x.counter.Load()) resolve here; an
					// unconsumed statement-position bump is exempt.
					if exempt[ast.Node(e)] {
						break
					}
					add(e, "atomic %s read in deterministic scope: consume a snapshot, not a live counter", f.Name())
				}
			}
		case *ast.UnaryExpr:
			if e.Op.String() == "<-" {
				add(e, "channel receive in deterministic scope")
			}
		case *ast.SelectStmt:
			add(e, "select in deterministic scope: arm choice is scheduler-dependent")
		}
		return true
	})
}

// bodyCallsSort reports whether the function body calls into sort or
// slices ordering functions anywhere — the collect-then-sort idiom
// makes an earlier map range benign.
func bodyCallsSort(r *Repo, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f, ok := r.funcObj(call.Fun).(*types.Func); ok && f.Pkg() != nil {
			p := f.Pkg().Path()
			if p == "sort" || p == "slices" && strings.HasPrefix(f.Name(), "Sort") {
				found = true
			}
		}
		return true
	})
	return found
}

// mapRebuildOnly reports whether a range body only assigns through
// index expressions (m2[k] = v shapes) — an order-insensitive rebuild.
func mapRebuildOnly(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	for _, st := range body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok {
			return false
		}
		for _, lhs := range as.Lhs {
			if _, ok := ast.Unparen(lhs).(*ast.IndexExpr); !ok {
				return false
			}
		}
	}
	return true
}

// formatLiteral extracts the constant format string of a fmt call, ""
// when the format is not constant or the function takes none.
func formatLiteral(r *Repo, call *ast.CallExpr, name string) string {
	argIdx := -1
	switch name {
	case "Printf", "Sprintf", "Errorf", "Appendf":
		argIdx = 0
	case "Fprintf":
		argIdx = 1
	}
	if argIdx < 0 || argIdx >= len(call.Args) {
		return ""
	}
	tv, ok := r.Info.Types[call.Args[argIdx]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return ""
	}
	return constant.StringVal(tv.Value)
}
