package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The endian analyzer flags byte-order assumptions outside the places
// entitled to have them. The paper's abstract-memory design (§5.1)
// exists precisely so that the debugger proper never knows the target's
// byte order — all multibyte interpretation happens behind amem against
// the arch's declared order — and the wire protocol is defined
// little-endian on every host (§4.2). So:
//
//   - references to encoding/binary's BigEndian, LittleEndian, and
//     NativeEndian are allowed only in the arch tree (where the order
//     is declared) and the nub package (the wire layer);
//   - shift-assembled multibyte loads — an | chain combining shifted
//     and indexed byte terms, the classic hand-rolled decoder — are
//     flagged in the same places.
//
// Legitimate exceptions (defined file formats like the .ldb symbol
// table and the .img image, the quirk compensation in machine.Load)
// carry //ldb:allow endian annotations with their reasons; the suite's
// summary counts them, so growth of the exception list is visible.

// endianExempt reports whether the package may hold byte-order
// assumptions: the arch tree and the little-endian wire layer.
func (r *Repo) endianExempt(p *Pkg) bool {
	return p.ImportPath == r.Mod+"/internal/arch" ||
		strings.HasPrefix(p.ImportPath, r.Mod+"/internal/arch/") ||
		p.ImportPath == r.Mod+"/internal/nub"
}

func runEndian(r *Repo) []Diagnostic {
	if r.Info == nil {
		return nil
	}
	var diags []Diagnostic
	for _, p := range r.Pkgs {
		if r.endianExempt(p) {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.SelectorExpr:
					if obj := r.Info.Uses[e.Sel]; obj != nil && isByteOrderVar(obj) {
						path, line, col := r.Position(e.Pos())
						diags = append(diags, Diagnostic{
							Analyzer: "endian", Path: path, Line: line, Col: col,
							Msg: fmt.Sprintf("binary.%s outside the arch tree and the wire layer; byte order belongs behind amem and arch.Arch", obj.Name()),
						})
					}
				case *ast.BinaryExpr:
					if e.Op == token.OR && shiftAssembled(e) && !insideOrChain(r, f, e) {
						path, line, col := r.Position(e.Pos())
						diags = append(diags, Diagnostic{
							Analyzer: "endian", Path: path, Line: line, Col: col,
							Msg: "shift-assembled multibyte load outside the arch tree and the wire layer; use amem against the arch's declared order",
						})
					}
				}
				return true
			})
		}
	}
	return diags
}

// isByteOrderVar reports whether obj is one of encoding/binary's
// byte-order variables.
func isByteOrderVar(obj types.Object) bool {
	if obj.Pkg() == nil || obj.Pkg().Path() != "encoding/binary" {
		return false
	}
	switch obj.Name() {
	case "BigEndian", "LittleEndian", "NativeEndian":
		return true
	}
	return false
}

// shiftAssembled reports whether e is an | chain with at least one
// shifted term and at least one term reading an indexed byte — the
// shape of a hand-rolled multibyte decoder like
// uint16(b[0])<<8 | uint16(b[1]).
func shiftAssembled(e *ast.BinaryExpr) bool {
	var terms []ast.Expr
	var flatten func(x ast.Expr)
	flatten = func(x ast.Expr) {
		if be, ok := x.(*ast.BinaryExpr); ok && be.Op == token.OR {
			flatten(be.X)
			flatten(be.Y)
			return
		}
		terms = append(terms, x)
	}
	flatten(e)
	if len(terms) < 2 {
		return false
	}
	var shifted, indexed bool
	for _, t := range terms {
		if be, ok := t.(*ast.BinaryExpr); ok && (be.Op == token.SHL || be.Op == token.SHR) {
			shifted = true
		}
		ast.Inspect(t, func(n ast.Node) bool {
			if _, ok := n.(*ast.IndexExpr); ok {
				indexed = true
			}
			return true
		})
	}
	return shifted && indexed
}

// insideOrChain reports whether e is a subterm of a larger | chain in
// f, so each assembled load is flagged once, at its outermost |.
func insideOrChain(r *Repo, f *File, e *ast.BinaryExpr) bool {
	inside := false
	ast.Inspect(f.AST, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.OR || be == e {
			return true
		}
		if be.X == e || be.Y == e {
			inside = true
		}
		return true
	})
	return inside
}
