package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file is the shared infrastructure for the whole-module analyzers
// added with the concurrency/determinism suite (lockorder, atomicity,
// detstate, wirecompat): an index of every function declared in the
// module, a direct static call graph over it, and the parsers for the
// annotation grammar those analyzers consume:
//
//	//ldb:lock <name> <rank>          on a mutex field or package var
//	//ldb:deterministic               on a function declaration
//	//ldb:wire-body <name> size=N [legacy=M]   on a struct type
//	//ldb:off N                       trailing, on a wire-body field
//
// The call graph is direct-call only: a callee is recorded when the
// call expression resolves to a *types.Func declared in the module
// (plain calls, method calls on concrete receivers, and function
// values passed as call arguments). Dynamic dispatch through interface
// values is invisible to it — the analyzers that ride on the graph
// (detstate's reachability, lockorder's summaries) document that
// approximation.

// declFunc is one function declared in the module, with its object.
type declFunc struct {
	pkg  *Pkg
	file *File
	decl *ast.FuncDecl
	obj  types.Object
}

// funcIndex maps every module function object to its declaration and
// records a stable ordering for deterministic iteration.
type funcIndex struct {
	byObj map[types.Object]*declFunc
	list  []*declFunc
}

// moduleFuncs indexes every function and method declared in the module.
func (r *Repo) moduleFuncs() *funcIndex {
	ix := &funcIndex{byObj: make(map[types.Object]*declFunc)}
	for _, p := range r.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := r.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				df := &declFunc{pkg: p, file: f, decl: fd, obj: obj}
				ix.byObj[obj] = df
				ix.list = append(ix.list, df)
			}
		}
	}
	return ix
}

// callees returns the module functions referenced from fd's body —
// direct calls plus function values passed around (the
// resumeAndLatch(n.runAndLatch) shape) — in source order.
func (r *Repo) callees(ix *funcIndex, fd *ast.FuncDecl) []*declFunc {
	var out []*declFunc
	seen := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var obj types.Object
		switch e := n.(type) {
		case *ast.Ident:
			obj = r.Info.Uses[e]
		case *ast.SelectorExpr:
			obj = r.Info.Uses[e.Sel]
		default:
			return true
		}
		if f, ok := obj.(*types.Func); ok && !seen[f] {
			if df, ok := ix.byObj[f]; ok {
				seen[f] = true
				out = append(out, df)
			}
		}
		return true
	})
	return out
}

// reachable computes the set of module functions reachable from the
// given roots over the direct call graph. The result maps each function
// to the root it was first reached from (for diagnostics).
func (r *Repo) reachable(ix *funcIndex, roots []*declFunc) map[types.Object]*declFunc {
	out := make(map[types.Object]*declFunc)
	var queue []*declFunc
	for _, root := range roots {
		if _, ok := out[root.obj]; !ok {
			out[root.obj] = root
			queue = append(queue, root)
		}
	}
	for len(queue) > 0 {
		df := queue[0]
		queue = queue[1:]
		root := out[df.obj]
		for _, callee := range r.callees(ix, df.decl) {
			if _, ok := out[callee.obj]; !ok {
				out[callee.obj] = root
				queue = append(queue, callee)
			}
		}
	}
	return out
}

// directiveArgs splits the argument text of a //ldb:<verb> comment into
// fields, returning nil when the comment is not that verb.
func directiveArgs(c *ast.Comment, verb string) ([]string, bool) {
	want := directivePrefix + verb
	if !strings.HasPrefix(c.Text, want) {
		return nil, false
	}
	rest := c.Text[len(want):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false
	}
	args := strings.Fields(rest)
	// Anything after "--" (or an em dash) is prose for the human reader,
	// not arguments: `//ldb:off 16 -- idle sessions LRU-evicted`.
	for i, a := range args {
		if a == "--" || a == "—" {
			args = args[:i]
			break
		}
	}
	return args, true
}

// commentGroupArgs looks a //ldb:<verb> directive up in a comment
// group, returning its arguments and the comment carrying it.
func commentGroupArgs(cg *ast.CommentGroup, verb string) ([]string, *ast.Comment, bool) {
	if cg == nil {
		return nil, nil, false
	}
	for _, c := range cg.List {
		if args, ok := directiveArgs(c, verb); ok {
			return args, c, true
		}
	}
	return nil, nil, false
}

// isMutexType reports whether t (after unwrapping pointers) is
// sync.Mutex or sync.RWMutex, and whether it is the RW flavor.
func isMutexType(t types.Type) (mutex, rw bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false, false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return true, false
	case "RWMutex":
		return true, true
	}
	return false, false
}

// lockDecl is one mutex declared at module scope: a struct field or a
// package-level variable, with its //ldb:lock annotation if present.
type lockDecl struct {
	obj  types.Object // the field or var
	file *File
	pos  ast.Node // the declaring node, for diagnostics
	name string   // annotated lock name ("" when unannotated)
	rank int
	ok   bool // annotation parsed cleanly
	err  string
}

// moduleLocks scans every struct field and package-level variable of
// mutex type, pairing each with its //ldb:lock annotation. Function-
// local mutexes are deliberately out of scope: they cannot participate
// in a cross-function ordering cycle under the declared-rank scheme
// and are treated as leaves.
func (r *Repo) moduleLocks() []*lockDecl {
	var out []*lockDecl
	addField := func(f *File, fld *ast.Field, obj types.Object) {
		ld := &lockDecl{obj: obj, file: f, pos: fld}
		args, _, ok := commentGroupArgs(fld.Doc, "lock")
		if !ok {
			args, _, ok = commentGroupArgs(fld.Comment, "lock")
		}
		parseLockArgs(ld, args, ok)
		out = append(out, ld)
	}
	for _, p := range r.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.AST.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						st, ok := s.Type.(*ast.StructType)
						if !ok {
							continue
						}
						// Struct fields, including embedded mutexes: the
						// checked struct type pairs each AST field (one slot
						// per name, one for an anonymous field) with its
						// *types.Var in declaration order.
						tobj := r.Info.Defs[s.Name]
						if tobj == nil {
							continue
						}
						tstruct, ok := tobj.Type().Underlying().(*types.Struct)
						if !ok {
							continue
						}
						idx := 0
						for _, fld := range st.Fields.List {
							slots := len(fld.Names)
							if slots == 0 {
								slots = 1
							}
							for s := 0; s < slots; s++ {
								if idx >= tstruct.NumFields() {
									break
								}
								obj := tstruct.Field(idx)
								idx++
								if m, _ := isMutexType(obj.Type()); m {
									addField(f, fld, obj)
								}
							}
						}
					case *ast.ValueSpec:
						for _, nm := range s.Names {
							obj := r.Info.Defs[nm]
							if obj == nil {
								continue
							}
							if m, _ := isMutexType(obj.Type()); m {
								ld := &lockDecl{obj: obj, file: f, pos: s}
								args, _, ok := commentGroupArgs(s.Doc, "lock")
								if !ok {
									args, _, ok = commentGroupArgs(s.Comment, "lock")
								}
								if !ok {
									args, _, ok = commentGroupArgs(gd.Doc, "lock")
								}
								parseLockArgs(ld, args, ok)
								out = append(out, ld)
							}
						}
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file.Path != out[j].file.Path {
			return out[i].file.Path < out[j].file.Path
		}
		return out[i].pos.Pos() < out[j].pos.Pos()
	})
	return out
}

func parseLockArgs(ld *lockDecl, args []string, present bool) {
	if !present {
		return
	}
	if len(args) != 2 {
		ld.err = "//ldb:lock needs a name and a rank"
		return
	}
	rank, err := strconv.Atoi(args[1])
	if err != nil {
		ld.err = "//ldb:lock rank " + strconv.Quote(args[1]) + " is not an integer"
		return
	}
	ld.name, ld.rank, ld.ok = args[0], rank, true
}
