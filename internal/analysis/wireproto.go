package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The wireproto analyzer proves the nub protocol's symmetry and
// exhaustiveness properties over the package that defines the message
// kinds. The protocol package declares its single source of truth with
// two markers:
//
//	//ldb:kind-table      on the map from kind constant to kindInfo
//	                      (name, request, space, idempotent)
//	//ldb:dispatch-table  on the server's kind-indexed handler table
//
// and the analyzer then checks, for the kind type those tables are
// keyed by:
//
//   - totality: every constant of the kind type is a key in the kind
//     table, with a non-empty, unique wire name (this is the String()
//     and stats entry);
//   - every request kind has a server dispatch arm — a registration
//     into the dispatch table, or a case in the connection loop
//     (func Serve), where the control messages that own the connection
//     must live;
//   - every request kind has a client encoder: a reference from a
//     method of the client side (receiver Client or Batch);
//   - a pre-dispatch validation path exists (a function returning
//     error that consults the kind table), and every read of the
//     dispatch table happens after a call to it;
//   - every switch over the kind type, anywhere in the module, is
//     exhaustive over the table or carries a non-empty default (the
//     server's default replies MError; a bare fallthrough default
//     would silently drop unknown kinds).

// kindEntry is one parsed kind-table entry.
type kindEntry struct {
	obj     *types.Const
	name    string
	request bool
	pos     ast.Node
}

// kindTable is one parsed //ldb:kind-table declaration.
type kindTable struct {
	pkg      *Pkg
	tableObj types.Object // the table variable
	keyType  types.Type   // the kind type
	entries  []*kindEntry
	node     ast.Node
}

func runWireproto(r *Repo) []Diagnostic {
	var diags []Diagnostic
	var tables []*kindTable
	for _, p := range r.Pkgs {
		t, ds := r.findKindTable(p)
		diags = append(diags, ds...)
		if t != nil {
			tables = append(tables, t)
		}
	}
	for _, t := range tables {
		diags = append(diags, r.checkKindTable(t)...)
		diags = append(diags, r.checkKindSwitches(t)...)
	}
	// A dispatch table without a kind table has nothing to validate
	// registrations against.
	for _, p := range r.Pkgs {
		hasTable := false
		for _, t := range tables {
			if t.pkg == p {
				hasTable = true
			}
		}
		if hasTable {
			continue
		}
		for _, f := range p.Files {
			for _, d := range markedDecls(f, "dispatch-table") {
				path, line, col := r.Position(d.Pos())
				diags = append(diags, Diagnostic{
					Analyzer: "wireproto", Path: path, Line: line, Col: col,
					Msg: "//ldb:dispatch-table without a //ldb:kind-table in the same package",
				})
			}
		}
	}
	return diags
}

// findKindTable locates and parses the package's //ldb:kind-table
// declaration, if any.
func (r *Repo) findKindTable(p *Pkg) (*kindTable, []Diagnostic) {
	if r.Info == nil {
		return nil, nil
	}
	var diags []Diagnostic
	bad := func(n ast.Node, format string, args ...any) {
		path, line, col := r.Position(n.Pos())
		diags = append(diags, Diagnostic{
			Analyzer: "wireproto", Path: path, Line: line, Col: col,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	var table *kindTable
	for _, f := range p.Files {
		for _, decl := range markedDecls(f, "kind-table") {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || len(gd.Specs) != 1 {
				bad(decl, "//ldb:kind-table must mark a single var declaration")
				continue
			}
			vs, ok := gd.Specs[0].(*ast.ValueSpec)
			if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
				bad(decl, "//ldb:kind-table must mark a single var with a literal value")
				continue
			}
			lit, ok := vs.Values[0].(*ast.CompositeLit)
			if !ok {
				bad(decl, "//ldb:kind-table value must be a map literal")
				continue
			}
			obj := r.Info.Defs[vs.Names[0]]
			mt, ok := obj.Type().Underlying().(*types.Map)
			if !ok {
				bad(decl, "//ldb:kind-table var must be a map keyed by the kind type")
				continue
			}
			if table != nil {
				bad(decl, "duplicate //ldb:kind-table (one per package)")
				continue
			}
			table = &kindTable{pkg: p, tableObj: obj, keyType: mt.Key(), node: decl}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				keyObj := r.exprConst(kv.Key)
				if keyObj == nil {
					bad(kv.Key, "kind-table key is not a kind constant")
					continue
				}
				e := &kindEntry{obj: keyObj, pos: kv}
				if vlit, ok := kv.Value.(*ast.CompositeLit); ok {
					for _, felt := range vlit.Elts {
						fkv, ok := felt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						fname, _ := fkv.Key.(*ast.Ident)
						if fname == nil {
							continue
						}
						tv, ok := r.Info.Types[fkv.Value]
						if !ok || tv.Value == nil {
							continue
						}
						switch fname.Name {
						case "name":
							if tv.Value.Kind() == constant.String {
								e.name = constant.StringVal(tv.Value)
							}
						case "request":
							e.request = constant.BoolVal(tv.Value)
						}
					}
				}
				table.entries = append(table.entries, e)
			}
		}
	}
	return table, diags
}

// exprConst resolves expr to the package-level constant it names.
func (r *Repo) exprConst(expr ast.Expr) *types.Const {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	c, _ := r.Info.Uses[id].(*types.Const)
	return c
}

func (r *Repo) checkKindTable(t *kindTable) []Diagnostic {
	var diags []Diagnostic
	add := func(n ast.Node, format string, args ...any) {
		path, line, col := r.Position(n.Pos())
		diags = append(diags, Diagnostic{
			Analyzer: "wireproto", Path: path, Line: line, Col: col,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	p := t.pkg

	// Wire names: present and unique.
	byName := make(map[string]*kindEntry)
	inTable := make(map[types.Object]*kindEntry)
	for _, e := range t.entries {
		inTable[e.obj] = e
		if e.name == "" {
			add(e.pos, "kind %s has no wire name in the kind table", e.obj.Name())
			continue
		}
		if prev, dup := byName[e.name]; dup {
			add(e.pos, "kinds %s and %s share the wire name %q", prev.obj.Name(), e.obj.Name(), e.name)
		}
		byName[e.name] = e
	}

	// Totality: every constant of the kind type is in the table.
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), t.keyType) {
			continue
		}
		if _, ok := inTable[c]; !ok {
			path, line, col := r.Position(c.Pos())
			diags = append(diags, Diagnostic{
				Analyzer: "wireproto", Path: path, Line: line, Col: col,
				Msg: fmt.Sprintf("kind %s missing from the kind table: it has no wire name and no validation entry", c.Name()),
			})
		}
	}

	// Dispatch table registrations and reads.
	dispatchObj, registered, dispatchNode := r.findDispatchTable(p, t)
	served := r.serveCases(p, t.keyType)

	// Client encoders: kind constants referenced from Client or Batch
	// methods.
	encoders := r.clientEncoderUses(p, t.keyType)

	for _, e := range t.entries {
		if !e.request {
			continue
		}
		if _, ok := registered[e.obj]; !ok && !served[e.obj] {
			add(e.pos, "request kind %s has no server dispatch arm: not registered in the dispatch table and not a case in Serve", e.obj.Name())
		}
		if !encoders[e.obj] {
			add(e.pos, "request kind %s has no client encoder: never referenced from a Client or Batch method", e.obj.Name())
		}
	}

	// Validation path: some function returning error must consult the
	// kind table, and dispatch-table reads must come after a call to it.
	validators := r.kindValidators(p, t)
	if len(validators) == 0 {
		add(t.node, "kind table has no validation path: no function returning error consults it")
	}
	if dispatchObj != nil {
		diags = append(diags, r.checkDispatchReads(p, dispatchObj, validators)...)
		_ = dispatchNode
	}
	return diags
}

// findDispatchTable locates the //ldb:dispatch-table var and the kind
// constants registered into it (assignments table[K] = handler).
// It returns the table object, the registration map (kind constant →
// handler function object), and the marked declaration.
func (r *Repo) findDispatchTable(p *Pkg, t *kindTable) (types.Object, map[types.Object]types.Object, ast.Node) {
	var tableObj types.Object
	var node ast.Node
	for _, f := range p.Files {
		for _, decl := range markedDecls(f, "dispatch-table") {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == 1 {
					tableObj = r.Info.Defs[vs.Names[0]]
					node = decl
				}
			}
		}
	}
	if tableObj == nil {
		return nil, nil, nil
	}
	registered := make(map[types.Object]types.Object)
	for _, f := range p.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				base, ok := ix.X.(*ast.Ident)
				if !ok || r.Info.Uses[base] != tableObj {
					continue
				}
				k := r.exprConst(ix.Index)
				if k == nil || !types.Identical(k.Type(), t.keyType) {
					continue
				}
				var h types.Object
				if i < len(as.Rhs) {
					h = r.funcObj(as.Rhs[i])
				}
				registered[k] = h
			}
			return true
		})
	}
	return tableObj, registered, node
}

// funcObj resolves expr — an identifier, selector, or method
// expression — to the function object it denotes.
func (r *Repo) funcObj(expr ast.Expr) types.Object {
	switch e := expr.(type) {
	case *ast.Ident:
		if f, ok := r.Info.Uses[e].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := r.Info.Uses[e.Sel].(*types.Func); ok {
			return f
		}
	case *ast.ParenExpr:
		return r.funcObj(e.X)
	}
	return nil
}

// serveCases collects the kind constants that appear as case values in
// switches inside a connection loop — a function named Serve, or a
// serveOne* helper such loops delegate single requests to (a
// multi-session server front end and the nub proper share one) — where
// the control messages that own the connection must be handled.
func (r *Repo) serveCases(p *Pkg, keyType types.Type) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range p.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "Serve" && !strings.HasPrefix(fd.Name.Name, "serveOne") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cc, ok := n.(*ast.CaseClause)
				if !ok {
					return true
				}
				for _, v := range cc.List {
					if c := r.exprConst(v); c != nil && types.Identical(c.Type(), keyType) {
						out[c] = true
					}
				}
				return true
			})
		}
	}
	return out
}

// clientEncoderUses collects the kind constants referenced from methods
// whose receiver is the client side of the protocol (Client or Batch).
func (r *Repo) clientEncoderUses(p *Pkg, keyType types.Type) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range p.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv := recvBaseName(fd)
			if recv != "Client" && recv != "Batch" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if c, ok := r.Info.Uses[id].(*types.Const); ok && types.Identical(c.Type(), keyType) {
					out[c] = true
				}
				return true
			})
		}
	}
	return out
}

// recvBaseName returns the receiver's base type name ("Client" for
// func (c *Client) ...), or "".
func recvBaseName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// kindValidators finds the package's validation functions: functions
// returning error whose bodies consult the kind table.
func (r *Repo) kindValidators(p *Pkg, t *kindTable) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range p.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Results == nil {
				continue
			}
			returnsErr := false
			for _, res := range fd.Type.Results.List {
				if tv, ok := r.Info.Types[res.Type]; ok && tv.Type.String() == "error" {
					returnsErr = true
				}
			}
			if !returnsErr {
				continue
			}
			uses := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && r.Info.Uses[id] == t.tableObj {
					uses = true
				}
				return true
			})
			if uses {
				out[r.Info.Defs[fd.Name]] = true
			}
		}
	}
	return out
}

// checkDispatchReads requires every read of the dispatch table to sit
// in a function that first calls a validator: the handlers may assume
// operands are in range only because checkRequest ran.
func (r *Repo) checkDispatchReads(p *Pkg, tableObj types.Object, validators map[types.Object]bool) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Registration assignments (table[K] = h) are writes; find
			// reads: IndexExpr over the table not on an assignment LHS.
			lhs := make(map[ast.Expr]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok {
					for _, l := range as.Lhs {
						lhs[l] = true
					}
				}
				return true
			})
			var reads []*ast.IndexExpr
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ix, ok := n.(*ast.IndexExpr)
				if !ok || lhs[ix] {
					return true
				}
				if base, ok := ix.X.(*ast.Ident); ok && r.Info.Uses[base] == tableObj {
					reads = append(reads, ix)
				}
				return true
			})
			if len(reads) == 0 {
				continue
			}
			firstCall := token.Pos(0)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if obj := r.funcObj(call.Fun); obj != nil && validators[obj] && (firstCall == 0 || call.Pos() < firstCall) {
					firstCall = call.Pos()
				}
				return true
			})
			for _, ix := range reads {
				if firstCall == 0 || ix.Pos() < firstCall {
					path, line, col := r.Position(ix.Pos())
					diags = append(diags, Diagnostic{
						Analyzer: "wireproto", Path: path, Line: line, Col: col,
						Msg: "dispatch table read without a prior validation call in the same function",
					})
				}
			}
		}
	}
	return diags
}

// checkKindSwitches checks every switch over the kind type, module
// wide: exhaustive over the kind table, or a non-empty default.
func (r *Repo) checkKindSwitches(t *kindTable) []Diagnostic {
	var diags []Diagnostic
	all := make(map[types.Object]bool)
	for _, e := range t.entries {
		all[e.obj] = true
	}
	for _, p := range r.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				tv, ok := r.Info.Types[sw.Tag]
				if !ok || !types.Identical(tv.Type, t.keyType) {
					return true
				}
				covered := make(map[types.Object]bool)
				var hasDefault, emptyDefault bool
				for _, stmt := range sw.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					if cc.List == nil {
						hasDefault = true
						emptyDefault = len(cc.Body) == 0
						continue
					}
					for _, v := range cc.List {
						if c := r.exprConst(v); c != nil {
							covered[c] = true
						}
					}
				}
				path, line, col := r.Position(sw.Pos())
				switch {
				case hasDefault && emptyDefault:
					diags = append(diags, Diagnostic{
						Analyzer: "wireproto", Path: path, Line: line, Col: col,
						Msg: "switch over message kinds has an empty default: unknown kinds must be answered, not dropped",
					})
				case !hasDefault:
					var missing []string
					for obj := range all {
						if !covered[obj] {
							missing = append(missing, obj.Name())
						}
					}
					if len(missing) > 0 {
						sort.Strings(missing)
						diags = append(diags, Diagnostic{
							Analyzer: "wireproto", Path: path, Line: line, Col: col,
							Msg: fmt.Sprintf("switch over message kinds is not exhaustive and has no default (missing %s)", strings.Join(missing, ", ")),
						})
					}
				}
				return true
			})
		}
	}
	return diags
}
