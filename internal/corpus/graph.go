// Package corpus schedules differential debug-session scenarios over
// a ninja-style dependency graph: compile, session, and diff steps are
// nodes, a bounded worker pool executes them, and content-hash
// fingerprints make a no-change re-run a near-no-op. It is the harness
// behind cmd/scenarios and the CI corpus smoke.
//
// The incremental model follows ninja's: a node's fingerprint is a
// hash of its key, its static inputs (source text, session axes), and
// its dependencies' fingerprints — computable without executing
// anything. Persisted nodes store their output in a cache addressed by
// that fingerprint, so "is this node up to date?" is one file probe,
// and a clean diff node stops the demand-driven walk before any
// compile or simulation runs.
package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Node is one unit of corpus work. Output flows to dependents as an
// arbitrary value; only persisted nodes must produce []byte (their
// output is written to the cache under the node's fingerprint).
// Non-persisted nodes (builds) are recomputed on demand and memoized
// in memory for the run.
type Node struct {
	Key     string  // unique node name, "kind:rest"
	Static  string  // non-dependency inputs folded into the fingerprint
	Deps    []*Node // dependencies, evaluated before Run
	Persist bool    // cache the output content-addressed by fingerprint
	Run     func(deps []any) (any, error)

	fp   string
	once sync.Once
	out  any
	err  error
	ran  bool // Run executed this run
	hit  bool // restored from the cache this run
}

// Kind returns the node-kind prefix of the key ("build", "session",
// "diff").
func (n *Node) Kind() string {
	if i := strings.IndexByte(n.Key, ':'); i >= 0 {
		return n.Key[:i]
	}
	return n.Key
}

// Fingerprint returns the node's content hash, computing and memoizing
// it (and its dependencies') on first use. Not safe for concurrent
// first calls; the Runner fingerprints the graph before going
// parallel.
//
//ldb:deterministic
func (n *Node) Fingerprint() string {
	if n.fp != "" {
		return n.fp
	}
	h := sha256.New()
	io.WriteString(h, n.Key)
	h.Write([]byte{0})
	io.WriteString(h, n.Static)
	h.Write([]byte{0})
	for _, d := range n.Deps {
		io.WriteString(h, d.Fingerprint())
	}
	n.fp = hex.EncodeToString(h.Sum(nil))
	return n.fp
}

// Graph is a set of nodes, deduplicated by key.
type Graph struct {
	mu    sync.Mutex //ldb:lock corpus.graph 51
	nodes map[string]*Node
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{nodes: map[string]*Node{}} }

// Add inserts n, or returns the already-registered node with the same
// key (so shared dependencies wire up naturally).
func (g *Graph) Add(n *Node) *Node {
	g.mu.Lock()
	defer g.mu.Unlock()
	if old, ok := g.nodes[n.Key]; ok {
		return old
	}
	g.nodes[n.Key] = n
	return n
}

// Len reports the number of registered nodes.
func (g *Graph) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.nodes)
}

// Cache is the content-addressed store: the output of a node with
// fingerprint fp lives at <dir>/<fp[:2]>/<fp>. Existence of that file
// is the up-to-date check; there is no separate manifest to go stale.
type Cache struct{ dir string }

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir}, nil
}

func (c *Cache) path(fp string) string {
	return filepath.Join(c.dir, fp[:2], fp)
}

// Get returns the cached output for fingerprint fp, if present.
func (c *Cache) Get(fp string) ([]byte, bool) {
	b, err := os.ReadFile(c.path(fp))
	if err != nil {
		return nil, false
	}
	return b, true
}

// Put stores out under fp atomically (write to a temp file, rename),
// so a crashed run never leaves a truncated entry that would satisfy
// Get.
func (c *Cache) Put(fp string, out []byte) error {
	p := c.path(fp)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), p)
}

// Stats summarizes one Run.
type Stats struct {
	Nodes    int            // nodes reachable from the wanted set
	Executed map[string]int // Run invocations by node kind
	UpToDate int            // persisted nodes restored from the cache
	Failed   int            // wanted nodes whose evaluation errored
}

// TotalExecuted sums Executed over kinds.
func (s Stats) TotalExecuted() int {
	n := 0
	for _, v := range s.Executed {
		n += v
	}
	return n
}

// Runner executes a wanted set demand-first over a bounded worker
// pool.
type Runner struct {
	Cache *Cache // nil runs everything, caching nothing
	Jobs  int    // concurrent Run invocations; <=0 means 4
}

// Run brings the wanted nodes up to date and returns statistics plus
// the first few failures joined into one error (nil when all wanted
// nodes succeeded). Evaluation is demand-driven: a persisted node
// whose fingerprint is already in the cache restores its output
// without touching its dependencies, which is what makes a no-change
// re-run skip every compile and simulation.
func (r *Runner) Run(want []*Node) (Stats, error) {
	jobs := r.Jobs
	if jobs <= 0 {
		jobs = 4
	}
	sem := make(chan struct{}, jobs)
	for _, n := range want {
		n.Fingerprint()
	}
	var wg sync.WaitGroup
	for _, n := range want {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			r.eval(n, sem)
		}(n)
	}
	wg.Wait()

	st := Stats{Executed: map[string]int{}}
	var errs []string
	seen := map[*Node]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		st.Nodes++
		if n.ran {
			st.Executed[n.Kind()]++
		}
		if n.hit {
			st.UpToDate++
		}
		for _, d := range n.Deps {
			walk(d)
		}
	}
	for _, n := range want {
		walk(n)
		if n.err != nil {
			st.Failed++
			if len(errs) < 5 {
				errs = append(errs, fmt.Sprintf("%s: %v", n.Key, n.err))
			}
		}
	}
	if st.Failed > 0 {
		sort.Strings(errs)
		return st, fmt.Errorf("%d of %d wanted nodes failed:\n%s", st.Failed, len(want), strings.Join(errs, "\n"))
	}
	return st, nil
}

// eval brings one node up to date: cache probe first, then
// dependencies in parallel, then Run under the worker semaphore.
// sync.Once makes concurrent demands collapse to one evaluation.
func (r *Runner) eval(n *Node, sem chan struct{}) (any, error) {
	n.once.Do(func() {
		if n.Persist && r.Cache != nil {
			if out, ok := r.Cache.Get(n.Fingerprint()); ok {
				n.out, n.hit = out, true
				return
			}
		}
		outs := make([]any, len(n.Deps))
		var wg sync.WaitGroup
		var mu sync.Mutex
		var depErr error
		for i, d := range n.Deps {
			wg.Add(1)
			go func(i int, d *Node) {
				defer wg.Done()
				o, err := r.eval(d, sem)
				mu.Lock()
				outs[i] = o
				if err != nil && depErr == nil {
					depErr = fmt.Errorf("dep %s: %w", d.Key, err)
				}
				mu.Unlock()
			}(i, d)
		}
		wg.Wait()
		if depErr != nil {
			n.err = depErr
			return
		}
		sem <- struct{}{}
		defer func() { <-sem }()
		n.out, n.err = n.Run(outs)
		n.ran = true
		if n.err != nil || !n.Persist || r.Cache == nil {
			return
		}
		b, ok := n.out.([]byte)
		if !ok {
			n.err = fmt.Errorf("corpus: persisted node %s produced %T, not []byte", n.Key, n.out)
			return
		}
		n.err = r.Cache.Put(n.Fingerprint(), b)
	})
	return n.out, n.err
}
