package corpus

import (
	"runtime"
	"strings"
	"testing"

	"ldb/internal/workload"
)

// The tier-1 corpus smoke: ~25 generated scenarios plus the hand
// workloads, every oracle axis (5 targets × fused/per-insn/uncached
// execution × wire on/off), byte-identical transcripts required. A
// second run against the same cache must be a no-op — no compiles, no
// simulations.
func TestCorpusSmoke(t *testing.T) {
	count := 25
	if testing.Short() {
		count = 5
	}
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ax := DefaultAxes()
	build := func() (*Graph, []*Node) {
		g, want := BuildGraph(1000, count, ax)
		for _, sc := range workloadScenarios() {
			want = append(want, AddScenario(g, sc, ax))
		}
		return g, want
	}
	_, want := build()
	r := &Runner{Cache: cache, Jobs: runtime.NumCPU()}
	st, err := r.Run(want)
	if err != nil {
		t.Fatalf("corpus run: %v", err)
	}
	if st.Executed["session"] != len(want)*ax.Sessions() {
		t.Errorf("executed %d sessions, want %d", st.Executed["session"], len(want)*ax.Sessions())
	}
	if st.Executed["build"] != len(want)*len(ax.Arches) {
		t.Errorf("executed %d builds, want %d", st.Executed["build"], len(want)*len(ax.Arches))
	}

	// The incremental guarantee: an immediate re-run reports every
	// graph node up to date and does no compile or simulate work.
	_, want2 := build()
	st2, err := (&Runner{Cache: cache, Jobs: runtime.NumCPU()}).Run(want2)
	if err != nil {
		t.Fatalf("re-run: %v", err)
	}
	if n := st2.TotalExecuted(); n != 0 {
		t.Errorf("clean re-run executed %d nodes (%v), want 0", n, st2.Executed)
	}
	if st2.UpToDate != len(want2) {
		t.Errorf("clean re-run: %d nodes up to date, want %d", st2.UpToDate, len(want2))
	}
}

// A transcript is address-free by construction; make sure nothing that
// looks like a hex address leaks in, since that is what guarantees the
// cross-ISA byte equality the oracle depends on.
func TestTranscriptsAddressFree(t *testing.T) {
	sc := workload.Generate(4242)
	g := NewGraph()
	AddScenario(g, sc, Axes{Arches: []string{"vax"}, Predecode: []PredecodeMode{PredecodeFused}, Wire: []bool{true}})
	var tr []byte
	for _, n := range []string{"session:" + sc.Name + ":vax:p2:w1"} {
		node := g.Add(&Node{Key: n})
		if node.Run == nil {
			t.Fatalf("session node %s not registered", n)
		}
		out, err := (&Runner{Jobs: 1}).evalForTest(node)
		if err != nil {
			t.Fatal(err)
		}
		tr = out.([]byte)
	}
	if strings.Contains(string(tr), "0x") {
		t.Errorf("transcript contains a hex address:\n%s", tr)
	}
	for _, wantSub := range []string{"break ", "hit 1 at ", "exit 0", "output "} {
		if !strings.Contains(string(tr), wantSub) {
			t.Errorf("transcript missing %q:\n%s", wantSub, tr)
		}
	}
}

// evalForTest exposes single-node evaluation for tests.
func (r *Runner) evalForTest(n *Node) (any, error) {
	n.Fingerprint()
	return r.eval(n, make(chan struct{}, 1))
}
