package corpus

import (
	"bytes"
	"fmt"
	"strings"

	"ldb/internal/core"
	"ldb/internal/driver"
	"ldb/internal/machine"
	"ldb/internal/nub"
	"ldb/internal/workload"
)

// sessionShare is the corpus-wide shared decode cache: every session of
// the same program image adopts the first finished session's decode
// products, the way the debug service's pool does. Sharing must be
// invisible in the transcripts — only the decode counters may move —
// which makes the whole differential corpus a soak test for the
// cross-session sharing seam.
var sessionShare = machine.NewTextCache()

// RunSession replays a scenario's debug script against one build of
// its program and returns the transcript: every debugger-visible line
// plus the program's own output and exit status. Transcripts are
// deliberately address-free — stop positions are reported as
// proc@stop-index, backtraces as procedure names — so the same program
// must transcribe identically on every ISA, in all three simulator
// execution modes, over the plain and the optimized wire protocol.
// That byte-equality is the corpus's differential oracle.
//
//ldb:deterministic
func RunSession(prog *driver.Program, sc workload.Scenario, pd PredecodeMode, wire bool) ([]byte, error) {
	var sink strings.Builder
	d, err := core.New(&sink)
	if err != nil {
		return nil, err
	}
	// Launch by hand rather than through nub.Launch: the execution mode
	// and the shared-cache adoption must be set before the handshake
	// runs the target to its first stop (adoption requires a virgin
	// decode cache).
	proc := machine.New(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	proc.NoPredecode = pd == PredecodeOff
	proc.NoFuse = pd == PredecodeInsn
	// Capture-only checkpointing: dirty tracking plus a paced COW
	// snapshot, never restored. It must be invisible in every transcript
	// — which makes the whole differential corpus a soak test for the
	// checkpoint seam across all ISAs and execution modes.
	proc.EnableCheckpoints()
	proc.SetAutoCheckpoint(50_000, func() { proc.TakeCheckpoint() })
	if pd != PredecodeOff {
		sessionShare.Adopt(proc)
		// Publish at session end, when the decode products are warmest;
		// planted-but-never-removed breakpoints mutate the text and so
		// key the entry away from the pristine image, never poisoning it.
		defer sessionShare.Publish(proc)
	}
	client, err := nub.Pair(nub.New(proc))
	if err != nil {
		return nil, fmt.Errorf("launch: %w", err)
	}
	tgt, err := d.AttachClient(sc.Name, client, prog.LoaderPS)
	if err != nil {
		return nil, fmt.Errorf("attach: %w", err)
	}
	tgt.Stdout = &proc.Stdout
	tgt.Client.SetBatching(wire)
	tgt.Client.SetCaching(wire)

	var tr bytes.Buffer
	say := func(format string, args ...any) { fmt.Fprintf(&tr, format+"\n", args...) }

	if _, err := tgt.BreakStop(sc.BreakProc, sc.BreakStop); err != nil {
		return nil, fmt.Errorf("break %s@%d: %w", sc.BreakProc, sc.BreakStop, err)
	}
	say("break %s@%d", sc.BreakProc, sc.BreakStop)

	exited := false
	for hit := 1; hit <= sc.MaxHits && !exited; hit++ {
		ev, err := tgt.ContinueToBreakpoint()
		if err != nil {
			return nil, fmt.Errorf("continue: %w", err)
		}
		if ev.Exited {
			say("exit %d", ev.Status)
			exited = true
			break
		}
		at, err := whereAmI(tgt)
		if err != nil {
			return nil, err
		}
		say("hit %d %s", hit, at)
		for _, name := range sc.Prints {
			v, err := printCapture(d, tgt, name)
			if err != nil {
				return nil, fmt.Errorf("print %s: %w", name, err)
			}
			say("  %s = %s", name, v)
		}
		for _, ex := range sc.Evals {
			v, err := tgt.EvalInt(ex)
			if err != nil {
				return nil, fmt.Errorf("eval %q: %w", ex, err)
			}
			say("  eval %s = %d", ex, v)
		}
		bt, err := tgt.Backtrace(8)
		if err != nil {
			return nil, fmt.Errorf("backtrace: %w", err)
		}
		say("  bt %s", strings.Join(bt, " <- "))
		for s := 0; s < sc.Steps && !exited; s++ {
			ev, err := tgt.Step()
			if err != nil {
				return nil, fmt.Errorf("step: %w", err)
			}
			if ev.Exited {
				say("exit %d", ev.Status)
				exited = true
				break
			}
			at, err := whereAmI(tgt)
			if err != nil {
				return nil, err
			}
			say("  step %s", at)
		}
	}
	if !exited {
		if err := tgt.Bpts.RemoveAll(); err != nil {
			return nil, fmt.Errorf("clear breakpoints: %w", err)
		}
		ev, err := tgt.ContinueToBreakpoint()
		if err != nil {
			return nil, fmt.Errorf("final continue: %w", err)
		}
		if !ev.Exited {
			return nil, fmt.Errorf("stopped unexpectedly: %v", ev)
		}
		say("exit %d", ev.Status)
	}
	say("output %q", proc.Stdout.String())
	return tr.Bytes(), nil
}

// whereAmI names the current stop as proc@index — the address-free
// location every ISA agrees on (stopping points are numbered by the
// machine-independent front end).
func whereAmI(tgt *core.Target) (string, error) {
	f, err := tgt.Frame(0)
	if err != nil {
		return "", err
	}
	ctx, err := tgt.ContextAt(f)
	if err != nil {
		return "", err
	}
	idx := -1
	if ctx.Stop != nil {
		idx = ctx.Stop.Index
	}
	return fmt.Sprintf("at %s@%d", ctx.ProcEntryName, idx), nil
}

// printCapture runs Print and captures what it writes.
func printCapture(d *core.Debugger, tgt *core.Target, name string) (string, error) {
	var buf strings.Builder
	old := d.In.Stdout
	d.In.Stdout = &buf
	defer func() { d.In.Stdout = old }()
	if err := tgt.Print(name); err != nil {
		return "", err
	}
	return strings.TrimRight(buf.String(), "\n"), nil
}

// workloadScenarios returns the hand-written benchmark programs as
// scenarios too (break in main, no steps), so the fixed corpus rides
// the same oracle. Kept here rather than in workload because the debug
// scripts are corpus policy.
func workloadScenarios() []workload.Scenario {
	var out []workload.Scenario
	for _, name := range workload.Names {
		out = append(out, workload.Scenario{
			Name:      "w_" + name,
			Source:    workload.Programs[name],
			BreakProc: "main",
			BreakStop: 0,
			MaxHits:   1,
			Evals:     []string{"1+1"},
		})
	}
	return out
}
