package corpus

import (
	"bytes"
	"fmt"

	"ldb/internal/driver"
	"ldb/internal/workload"
)

// PredecodeMode selects how a session's simulator executes: straight
// interpretation from memory, the per-instruction decode cache, or the
// decode cache with superblock fusion on top. All three must transcribe
// identically — fusion is a pure speed transform.
type PredecodeMode int

const (
	PredecodeOff   PredecodeMode = iota // interpret from memory
	PredecodeInsn                       // decode cache, one instruction per dispatch
	PredecodeFused                      // decode cache + superblock fusion
)

// Axes are the differential dimensions every scenario is checked
// across: the target ISAs (the mips big-endian variant rides along as
// a fifth configuration), the three simulator execution modes, and the
// optimized versus plain wire protocol. A scenario passes only if all
// len(Arches)×3×2 sessions produce byte-identical transcripts.
type Axes struct {
	Arches    []string
	Predecode []PredecodeMode
	Wire      []bool // true = batching+caching transport
}

// DefaultAxes covers everything: 5 targets × 3 execution modes × wire
// on/off = 30 sessions per scenario.
func DefaultAxes() Axes {
	return Axes{
		Arches:    []string{"mips", "mipsbe", "sparc", "m68k", "vax"},
		Predecode: []PredecodeMode{PredecodeFused, PredecodeInsn, PredecodeOff},
		Wire:      []bool{true, false},
	}
}

// Sessions reports the number of sessions per scenario.
func (ax Axes) Sessions() int {
	return len(ax.Arches) * len(ax.Predecode) * len(ax.Wire)
}

// scriptStatic folds the debug script into a session fingerprint (the
// program source reaches the fingerprint through the build dep).
//
//ldb:deterministic
func scriptStatic(sc workload.Scenario) string {
	return fmt.Sprintf("break=%s@%d hits=%d steps=%d prints=%v evals=%v",
		sc.BreakProc, sc.BreakStop, sc.MaxHits, sc.Steps, sc.Prints, sc.Evals)
}

// AddScenario wires one scenario into the graph — one build node per
// arch, one session node per axis point, one diff node over all the
// transcripts — and returns the diff node, the thing a caller wants.
func AddScenario(g *Graph, sc workload.Scenario, ax Axes) *Node {
	var sessions []*Node
	for _, archName := range ax.Arches {
		archName := archName
		build := g.Add(&Node{
			Key:    "build:" + sc.Name + ":" + archName,
			Static: "debug:1\n" + sc.Source,
			Run: func([]any) (any, error) {
				return driver.Build(
					[]driver.Source{{Name: sc.Name + ".c", Text: sc.Source}},
					driver.Options{Arch: archName, Debug: true, Sched: archName == "mips" || archName == "mipsbe"})
			},
		})
		for _, pd := range ax.Predecode {
			for _, wire := range ax.Wire {
				pd, wire := pd, wire
				sessions = append(sessions, g.Add(&Node{
					Key:     fmt.Sprintf("session:%s:%s:p%d:w%d", sc.Name, archName, int(pd), b2i(wire)),
					Static:  scriptStatic(sc),
					Deps:    []*Node{build},
					Persist: true,
					Run: func(deps []any) (any, error) {
						return RunSession(deps[0].(*driver.Program), sc, pd, wire)
					},
				}))
			}
		}
	}
	return g.Add(&Node{
		Key:     "diff:" + sc.Name,
		Deps:    sessions,
		Persist: true,
		Run: func(deps []any) (any, error) {
			want := deps[0].([]byte)
			for i := 1; i < len(deps); i++ {
				got := deps[i].([]byte)
				if !bytes.Equal(want, got) {
					return nil, fmt.Errorf("transcripts diverge:\n--- %s\n%s\n--- %s\n%s\nsource:\n%s",
						sessions[0].Key, firstDiff(want, got, true),
						sessions[i].Key, firstDiff(want, got, false), sc.Source)
				}
			}
			return []byte("ok\n"), nil
		},
	})
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// firstDiff trims two transcripts to the region around their first
// differing line, for readable divergence reports.
func firstDiff(a, b []byte, wantA bool) string {
	al := bytes.Split(a, []byte("\n"))
	bl := bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) || i < len(bl); i++ {
		var av, bv []byte
		if i < len(al) {
			av = al[i]
		}
		if i < len(bl) {
			bv = bl[i]
		}
		if !bytes.Equal(av, bv) {
			pick := av
			if !wantA {
				pick = bv
			}
			return fmt.Sprintf("line %d: %q", i+1, pick)
		}
	}
	return "(equal)"
}

// BuildGraph generates count scenarios starting at baseSeed and wires
// them all into a fresh graph, returning the diff nodes to run.
func BuildGraph(baseSeed int64, count int, ax Axes) (*Graph, []*Node) {
	g := NewGraph()
	want := make([]*Node, 0, count)
	for i := 0; i < count; i++ {
		sc := workload.Generate(baseSeed + int64(i))
		want = append(want, AddScenario(g, sc, ax))
	}
	return g, want
}
