package corpus

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// bnode builds a test node that records executions.
func bnode(key, static string, persist bool, deps []*Node, execs *int32, out string) *Node {
	return &Node{
		Key: key, Static: static, Deps: deps, Persist: persist,
		Run: func(ins []any) (any, error) {
			atomic.AddInt32(execs, 1)
			var parts []string
			for _, in := range ins {
				switch v := in.(type) {
				case []byte:
					parts = append(parts, string(v))
				case string:
					parts = append(parts, v)
				}
			}
			return []byte(out + "(" + strings.Join(parts, ",") + ")"), nil
		},
	}
}

func TestGraphDiamondRunsOnce(t *testing.T) {
	var execs int32
	g := NewGraph()
	base := g.Add(bnode("build:x", "src", false, nil, &execs, "b"))
	l := g.Add(bnode("session:l", "", true, []*Node{base}, &execs, "l"))
	r := g.Add(bnode("session:r", "", true, []*Node{base}, &execs, "r"))
	d := g.Add(bnode("diff:x", "", true, []*Node{l, r}, &execs, "d"))
	st, err := (&Runner{Jobs: 4}).Run([]*Node{d})
	if err != nil {
		t.Fatal(err)
	}
	if execs != 4 {
		t.Errorf("executed %d nodes, want 4 (shared dep must run once)", execs)
	}
	if st.TotalExecuted() != 4 || st.Nodes != 4 {
		t.Errorf("stats %+v", st)
	}
}

func TestGraphIncrementalRerun(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(static string, execs *int32) []*Node {
		g := NewGraph()
		b := g.Add(bnode("build:x", static, false, nil, execs, "b"))
		s := g.Add(bnode("session:x", "", true, []*Node{b}, execs, "s"))
		return []*Node{g.Add(bnode("diff:x", "", true, []*Node{s}, execs, "d"))}
	}
	var e1 int32
	if _, err := (&Runner{Cache: cache, Jobs: 2}).Run(mk("v1", &e1)); err != nil {
		t.Fatal(err)
	}
	if e1 != 3 {
		t.Fatalf("first run executed %d, want 3", e1)
	}
	// Unchanged inputs: the diff node restores from cache; nothing
	// runs, not even the unpersisted build.
	var e2 int32
	st, err := (&Runner{Cache: cache, Jobs: 2}).Run(mk("v1", &e2))
	if err != nil {
		t.Fatal(err)
	}
	if e2 != 0 {
		t.Errorf("clean re-run executed %d nodes, want 0", e2)
	}
	if st.UpToDate == 0 {
		t.Errorf("clean re-run reported no up-to-date nodes: %+v", st)
	}
	// Changed static input: fingerprints shift, everything downstream
	// re-runs.
	var e3 int32
	if _, err := (&Runner{Cache: cache, Jobs: 2}).Run(mk("v2", &e3)); err != nil {
		t.Fatal(err)
	}
	if e3 != 3 {
		t.Errorf("changed input re-ran %d nodes, want 3", e3)
	}
}

func TestGraphErrorPropagates(t *testing.T) {
	g := NewGraph()
	bad := g.Add(&Node{Key: "session:bad", Run: func([]any) (any, error) {
		return nil, fmt.Errorf("boom")
	}})
	var execs int32
	d := g.Add(bnode("diff:x", "", false, []*Node{bad}, &execs, "d"))
	st, err := (&Runner{Jobs: 2}).Run([]*Node{d})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want boom", err)
	}
	if execs != 0 {
		t.Errorf("dependent ran despite failed dep")
	}
	if st.Failed != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestGraphBoundedWorkers(t *testing.T) {
	const jobs = 3
	var cur, peak int32
	g := NewGraph()
	var want []*Node
	var mu sync.Mutex
	for i := 0; i < 24; i++ {
		want = append(want, g.Add(&Node{
			Key: fmt.Sprintf("session:%d", i),
			Run: func([]any) (any, error) {
				c := atomic.AddInt32(&cur, 1)
				mu.Lock()
				if c > peak {
					peak = c
				}
				mu.Unlock()
				defer atomic.AddInt32(&cur, -1)
				return []byte("x"), nil
			},
		}))
	}
	if _, err := (&Runner{Jobs: jobs}).Run(want); err != nil {
		t.Fatal(err)
	}
	if peak > jobs {
		t.Errorf("peak concurrency %d exceeds %d jobs", peak, jobs)
	}
}

func TestGraphDedupByKey(t *testing.T) {
	g := NewGraph()
	a := g.Add(&Node{Key: "build:x"})
	b := g.Add(&Node{Key: "build:x"})
	if a != b {
		t.Fatal("Add did not dedup by key")
	}
	if g.Len() != 1 {
		t.Fatalf("len %d", g.Len())
	}
}
