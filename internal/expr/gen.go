package expr

import (
	"fmt"
	"strings"

	"ldb/internal/cc"
)

// gen rewrites typed expression trees into PostScript — the analog of
// the paper's 124-line rewriter from lcc's intermediate representation
// (§5: "it is easy to generate PostScript").
//
// Value conventions: integers and pointers travel as PostScript
// integers (pointers as addresses), floats as reals. Variables are read
// and written through the debugging operators, so evaluation happens
// against the current frame's abstract memory.
type gen struct {
	tc *cc.TargetConf
}

func (g *gen) errf(format string, args ...any) error {
	return fmt.Errorf("expression server: "+format, args...)
}

// whereOf renders the location of a reconstructed symbol.
func (g *gen) whereOf(sym *cc.Symbol) (string, error) {
	w, ok := sym.Ext.(*Where)
	if !ok || w == nil {
		return "", g.errf("%s has no location", sym.Name)
	}
	switch w.Kind {
	case "frame":
		return fmt.Sprintf("%d FrameOffset", w.Off), nil
	case "anchor":
		return fmt.Sprintf("(%s) %d LazyData", w.Label, w.Idx), nil
	case "global":
		return fmt.Sprintf("(%s) GlobalData", w.Label), nil
	case "code":
		return fmt.Sprintf("(%s) GlobalCode", w.Label), nil
	case "absolute":
		space := map[byte]string{'d': "DLoc", 'c': "CLoc", 'r': "RLoc", 'f': "FLoc", 'x': "XLoc"}[w.SpaceC]
		if space == "" {
			return "", g.errf("bad location space %q", string(w.SpaceC))
		}
		return fmt.Sprintf("%d %s", w.Off, space), nil
	}
	return "", g.errf("bad location kind %q", w.Kind)
}

// sizes of a scalar type: (intSize, signed) or float fetch size.
func intSize(t *cc.Type) (int, bool) {
	switch t.Kind {
	case cc.TyChar:
		return 1, true
	case cc.TyShort:
		return 2, true
	case cc.TyUInt:
		return 4, false
	default:
		return 4, true
	}
}

func (g *gen) fsize(t *cc.Type) int {
	switch t.Kind {
	case cc.TyFloat:
		return 4
	case cc.TyLDouble:
		if g.tc.LDoubleSize == 12 {
			return 10
		}
		return 8
	default:
		return 8
	}
}

// lvalue renders PostScript leaving the location of e on the stack.
func (g *gen) lvalue(e *cc.Expr) (string, error) {
	switch e.Op {
	case cc.EIdent:
		return g.whereOf(e.Sym)
	case cc.EDeref:
		addr, err := g.expr(e.L)
		if err != nil {
			return "", err
		}
		return addr + " DLoc", nil
	case cc.EMember:
		base, err := g.lvalue(e.L)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s %d Shifted", base, e.Field.Off), nil
	default:
		return "", g.errf("not an lvalue")
	}
}

// fetch renders a fetch of type t from the location on the stack.
func (g *gen) fetch(t *cc.Type) (string, error) {
	switch {
	case t.IsFloat():
		return fmt.Sprintf("CurrentMem exch %d FetchFloat", g.fsize(t)), nil
	case t.IsInteger() || t.Kind == cc.TyPtr:
		size, signed := intSize(t)
		op := "FetchSigned"
		if !signed || t.Kind == cc.TyPtr {
			op = "FetchInt"
		}
		return fmt.Sprintf("CurrentMem exch %d %s", size, op), nil
	case t.Kind == cc.TyArray, t.Kind == cc.TyFunc, t.Kind == cc.TyStruct, t.Kind == cc.TyUnion:
		// Aggregates evaluate to their address.
		return "LocOffset", nil
	}
	return "", g.errf("cannot fetch a %s", t)
}

func boolize(s string) string { return s + " 0 ne {1} {0} ifelse" }

// expr renders PostScript leaving e's value on the stack.
func (g *gen) expr(e *cc.Expr) (string, error) {
	switch e.Op {
	case cc.EConst:
		return fmt.Sprintf("%d", e.IVal), nil
	case cc.EFConst:
		s := fmt.Sprintf("%g", e.FVal)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s, nil
	case cc.EIdent:
		loc, err := g.whereOf(e.Sym)
		if err != nil {
			return "", err
		}
		f, err := g.fetch(e.Type)
		if err != nil {
			return "", err
		}
		return loc + " " + f, nil
	case cc.EString:
		return "", g.errf("string literals are not supported in debugger expressions")
	case cc.ECall:
		// §7.1: procedure calls in expressions. The generated procedure
		// evaluates the arguments against the current frame, then the
		// debugger's TargetCall operator runs the callee in the target
		// process and pushes its result.
		callee := e.L
		if callee.Op == cc.EAddr {
			callee = callee.L
		}
		if callee.Op != cc.EIdent || callee.Sym == nil || callee.Sym.Kind != cc.SymFunc {
			return "", g.errf("only direct calls to named procedures are supported")
		}
		var b strings.Builder
		for _, a := range e.Args {
			if a.Type.IsFloat() {
				return "", g.errf("floating-point arguments are not supported in calls")
			}
			s, err := g.expr(a)
			if err != nil {
				return "", err
			}
			b.WriteString(s)
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d (%s) TargetCall", len(e.Args), callee.Sym.Name)
		return b.String(), nil
	case cc.EAddr:
		loc, err := g.lvalue(e.L)
		if err != nil {
			return "", err
		}
		return loc + " LocOffset", nil
	case cc.EDeref, cc.EMember:
		loc, err := g.lvalue(e)
		if err != nil {
			return "", err
		}
		f, err := g.fetch(e.Type)
		if err != nil {
			return "", err
		}
		return loc + " " + f, nil
	case cc.EAssign:
		return g.assign(e)
	case cc.ECast:
		return g.cast(e)
	case cc.ENeg:
		s, err := g.expr(e.L)
		if err != nil {
			return "", err
		}
		return s + " neg", nil
	case cc.EBitNot:
		s, err := g.expr(e.L)
		if err != nil {
			return "", err
		}
		return s + " not", nil
	case cc.ELogNot:
		s, err := g.expr(e.L)
		if err != nil {
			return "", err
		}
		return s + " 0 eq {1} {0} ifelse", nil
	case cc.ELogAnd:
		l, err := g.expr(e.L)
		if err != nil {
			return "", err
		}
		r, err := g.expr(e.R)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s 0 ne { %s } {0} ifelse", l, boolize(r)), nil
	case cc.ELogOr:
		l, err := g.expr(e.L)
		if err != nil {
			return "", err
		}
		r, err := g.expr(e.R)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s 0 ne {1} { %s } ifelse", l, boolize(r)), nil
	case cc.ECond:
		c, err := g.expr(e.L)
		if err != nil {
			return "", err
		}
		a, err := g.expr(e.Args[0])
		if err != nil {
			return "", err
		}
		b, err := g.expr(e.Args[1])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s 0 ne { %s } { %s } ifelse", c, a, b), nil
	case cc.EEq, cc.ENe, cc.ELt, cc.ELe, cc.EGt, cc.EGe:
		l, err := g.expr(e.L)
		if err != nil {
			return "", err
		}
		r, err := g.expr(e.R)
		if err != nil {
			return "", err
		}
		op := map[cc.ExprOp]string{cc.EEq: "eq", cc.ENe: "ne", cc.ELt: "lt", cc.ELe: "le", cc.EGt: "gt", cc.EGe: "ge"}[e.Op]
		return fmt.Sprintf("%s %s %s {1} {0} ifelse", l, r, op), nil
	case cc.EAdd, cc.ESub, cc.EMul, cc.EDiv, cc.ERem, cc.EAnd, cc.EOr, cc.EXor, cc.EShl, cc.EShr:
		return g.binary(e)
	case cc.EPostInc, cc.EPostDec, cc.EPreInc, cc.EPreDec:
		return g.incdec(e)
	case cc.EComma:
		l, err := g.expr(e.L)
		if err != nil {
			return "", err
		}
		r, err := g.expr(e.R)
		if err != nil {
			return "", err
		}
		return l + " pop " + r, nil
	}
	return "", g.errf("unsupported expression operator %v", e.Op)
}

func (g *gen) binary(e *cc.Expr) (string, error) {
	l, err := g.expr(e.L)
	if err != nil {
		return "", err
	}
	r, err := g.expr(e.R)
	if err != nil {
		return "", err
	}
	// Pointer arithmetic scales by the element size.
	if e.Type.Kind == cc.TyPtr && (e.Op == cc.EAdd || e.Op == cc.ESub) && e.R.Type.IsInteger() {
		size := e.Type.Base.Size(g.tc)
		if size != 1 {
			r = fmt.Sprintf("%s %d mul", r, size)
		}
	}
	if e.Op == cc.ESub && e.L.Type.Kind == cc.TyPtr && e.R.Type.Kind == cc.TyPtr {
		size := e.L.Type.Base.Size(g.tc)
		return fmt.Sprintf("%s %s sub %d idiv", l, r, size), nil
	}
	if e.Type.IsFloat() {
		op := map[cc.ExprOp]string{cc.EAdd: "add", cc.ESub: "sub", cc.EMul: "mul", cc.EDiv: "div"}[e.Op]
		if op == "" {
			return "", g.errf("bad float operator")
		}
		return fmt.Sprintf("%s %s %s", l, r, op), nil
	}
	var op string
	switch e.Op {
	case cc.EAdd:
		op = "add"
	case cc.ESub:
		op = "sub"
	case cc.EMul:
		op = "mul"
	case cc.EDiv:
		op = "idiv"
	case cc.ERem:
		op = "mod"
	case cc.EAnd:
		op = "and"
	case cc.EOr:
		op = "or"
	case cc.EXor:
		op = "xor"
	case cc.EShl:
		op = "bitshift"
		return fmt.Sprintf("%s %s %s", l, r, op), nil
	case cc.EShr:
		return fmt.Sprintf("%s %s neg bitshift", l, r), nil
	}
	return fmt.Sprintf("%s %s %s", l, r, op), nil
}

func (g *gen) cast(e *cc.Expr) (string, error) {
	s, err := g.expr(e.L)
	if err != nil {
		return "", err
	}
	from, to := e.L.Type, e.Type
	switch {
	case from.IsInteger() && to.IsFloat():
		return s + " cvr", nil
	case from.IsFloat() && to.IsInteger():
		s += " truncate cvi"
	case from.IsFloat() && to.IsFloat():
		return s, nil
	}
	switch to.Kind {
	case cc.TyChar:
		return s + " 255 and dup 127 gt {256 sub} if", nil
	case cc.TyShort:
		return s + " 65535 and dup 32767 gt {65536 sub} if", nil
	}
	return s, nil
}

func (g *gen) assign(e *cc.Expr) (string, error) {
	loc, err := g.lvalue(e.L)
	if err != nil {
		return "", err
	}
	rhs, err := g.expr(e.R)
	if err != nil {
		return "", err
	}
	t := e.L.Type
	if t.IsFloat() {
		// value dup mem loc size → [v v m l s] → roll → StoreFloat.
		return fmt.Sprintf("%s dup CurrentMem %s %d 5 -1 roll StoreFloat", rhs, loc, g.fsize(t)), nil
	}
	size, _ := intSize(t)
	if t.Kind == cc.TyPtr {
		size = 4
	}
	return fmt.Sprintf("%s dup CurrentMem %s %d 5 -1 roll StoreInt", rhs, loc, size), nil
}

func (g *gen) incdec(e *cc.Expr) (string, error) {
	loc, err := g.lvalue(e.L)
	if err != nil {
		return "", err
	}
	f, err := g.fetch(e.L.Type)
	if err != nil {
		return "", err
	}
	delta := 1
	if e.L.Type.Kind == cc.TyPtr {
		delta = e.L.Type.Base.Size(g.tc)
	}
	op := "add"
	if e.Op == cc.EPostDec || e.Op == cc.EPreDec {
		op = "sub"
	}
	size, _ := intSize(e.L.Type)
	// old-value new-value ordering depends on pre/post: the store must
	// consume the new value and leave the other (rotate the top four so
	// the value on top slides under mem/loc/size).
	fetchOld := fmt.Sprintf("%s %s", loc, f)
	store := fmt.Sprintf("CurrentMem %s %d 4 -1 roll StoreInt", loc, size)
	if e.Op == cc.EPreInc || e.Op == cc.EPreDec {
		return fmt.Sprintf("%s %d %s dup %s", fetchOld, delta, op, store), nil
	}
	return fmt.Sprintf("%s dup %d %s %s", fetchOld, delta, op, store), nil
}
