package expr

import (
	"bufio"
	"io"
	"strings"
	"testing"

	"ldb/internal/cc"
)

var conf = &cc.TargetConf{Name: "sparc", LDoubleSize: 8}

// runServer sends one expression, answering lookups from replies, and
// returns everything the server wrote.
func runServer(t *testing.T, exprText string, replies map[string]string) string {
	t.Helper()
	reqR, reqW := io.Pipe()
	var outBuf strings.Builder
	outR, outW := io.Pipe()
	srv := NewServer(conf, reqR, outW)
	go srv.Serve()
	done := make(chan struct{})
	// Reader side: consume server output, answering lookup requests.
	go func() {
		defer close(done)
		buf := make([]byte, 1)
		line := ""
		for {
			if _, err := outR.Read(buf); err != nil {
				return
			}
			outBuf.WriteByte(buf[0])
			if buf[0] != '\n' {
				line += string(buf[0])
				continue
			}
			trimmed := strings.TrimSpace(line)
			line = ""
			if strings.HasSuffix(trimmed, "ExpressionServer.lookup") {
				name := strings.TrimPrefix(strings.Fields(trimmed)[0], "/")
				reply, ok := replies[name]
				if !ok {
					reply = "nosym"
				}
				io.WriteString(reqW, reply+"\n")
			}
			if strings.HasSuffix(trimmed, "ExpressionServer.result") ||
				strings.HasSuffix(trimmed, "ExpressionServer.failed") {
				reqW.Close()
				return
			}
		}
	}()
	io.WriteString(reqW, "expr "+exprText+"\n")
	<-done
	return outBuf.String()
}

func TestServerGeneratesProcedure(t *testing.T) {
	out := runServer(t, "i + 1", map[string]string{
		"i": "sym frame -12 ; int i",
	})
	if !strings.Contains(out, "/i ExpressionServer.lookup") {
		t.Fatalf("no lookup request:\n%s", out)
	}
	if !strings.Contains(out, "-12 FrameOffset") {
		t.Fatalf("no frame addressing:\n%s", out)
	}
	if !strings.Contains(out, "FetchSigned") || !strings.Contains(out, "1 add") {
		t.Fatalf("bad code:\n%s", out)
	}
	if !strings.Contains(out, "ExpressionServer.result") {
		t.Fatalf("no result marker:\n%s", out)
	}
}

func TestServerAnchorsAndGlobals(t *testing.T) {
	out := runServer(t, "g + s[2]", map[string]string{
		"g": "sym global _g ; int g",
		"s": "sym anchor _stanchor__Vx_y 3 ; int s[8]",
	})
	if !strings.Contains(out, "(_g) GlobalData") {
		t.Fatalf("global addressing missing:\n%s", out)
	}
	if !strings.Contains(out, "(_stanchor__Vx_y) 3 LazyData") {
		t.Fatalf("anchor addressing missing:\n%s", out)
	}
}

func TestServerTypeCacheAcrossExpressions(t *testing.T) {
	// Drive the protocol strictly sequentially: one writer goroutine
	// answers lookups; the main goroutine issues requests one at a time
	// and waits for each result marker.
	reqR, reqW := io.Pipe()
	outR, outW := io.Pipe()
	srv := NewServer(conf, reqR, outW)
	go srv.Serve()

	lookups := 0
	lines := make(chan string)
	go func() {
		defer close(lines)
		buf := make([]byte, 1)
		line := ""
		for {
			if _, err := outR.Read(buf); err != nil {
				return
			}
			if buf[0] != '\n' {
				line += string(buf[0])
				continue
			}
			lines <- strings.TrimSpace(line)
			line = ""
		}
	}()
	eval := func(e string) {
		t.Helper()
		if _, err := io.WriteString(reqW, "expr "+e+"\n"); err != nil {
			t.Fatal(err)
		}
		for l := range lines {
			if strings.HasSuffix(l, "ExpressionServer.lookup") {
				lookups++
				io.WriteString(reqW, "sym frame -8 ; int v\n")
				continue
			}
			if strings.HasSuffix(l, "ExpressionServer.result") || strings.HasSuffix(l, "ExpressionServer.failed") {
				return
			}
		}
	}
	eval("v")
	eval("v + v") // the server saves type information across expressions
	eval("v * 2")
	if lookups != 1 {
		t.Fatalf("lookups = %d, want 1 (type info cached, §3)", lookups)
	}
	// "newscope" flushes frame-relative bindings (a shadowed local may
	// map the same name to a new offset) but keeps everything else.
	io.WriteString(reqW, "newscope\n")
	eval("v") // looked up again: frame binding was dropped
	if lookups != 2 {
		t.Fatalf("lookups = %d, want 2 after newscope", lookups)
	}
	io.WriteString(reqW, "quit\n")
}

func TestNewscopeKeepsGlobalBindings(t *testing.T) {
	reqR, reqW := io.Pipe()
	outR, outW := io.Pipe()
	srv := NewServer(conf, reqR, outW)
	go srv.Serve()

	lookups := 0
	lines := make(chan string)
	go func() {
		defer close(lines)
		r := bufio.NewReader(outR)
		for {
			l, err := r.ReadString('\n')
			if err != nil {
				return
			}
			lines <- strings.TrimSpace(l)
		}
	}()
	eval := func(e string) {
		t.Helper()
		if _, err := io.WriteString(reqW, "expr "+e+"\n"); err != nil {
			t.Fatal(err)
		}
		for l := range lines {
			if strings.HasSuffix(l, "ExpressionServer.lookup") {
				lookups++
				io.WriteString(reqW, "sym global _g ; int g\n")
				continue
			}
			if strings.HasSuffix(l, "ExpressionServer.result") || strings.HasSuffix(l, "ExpressionServer.failed") {
				return
			}
		}
	}
	eval("g")
	io.WriteString(reqW, "newscope\n")
	eval("g + 1")
	if lookups != 1 {
		t.Fatalf("lookups = %d, want 1 (globals survive newscope)", lookups)
	}
	io.WriteString(reqW, "quit\n")
}

func TestServerErrors(t *testing.T) {
	out := runServer(t, "1 +", nil)
	if !strings.Contains(out, "ExpressionServer.failed") {
		t.Fatalf("parse error not reported:\n%s", out)
	}
	out = runServer(t, "missing + 1", nil)
	if !strings.Contains(out, "ExpressionServer.failed") {
		t.Fatalf("unknown symbol not reported:\n%s", out)
	}
	// §7.1: calls are supported through the TargetCall operator — but
	// only direct calls with integer arguments.
	out = runServer(t, "f(2 + 3)", map[string]string{"f": "sym code _f ; int f(int)"})
	if !strings.Contains(out, "5 1 (f) TargetCall") { // 2+3 folded by the front end
		t.Fatalf("call not generated:\n%s", out)
	}
	out = runServer(t, "g(1.5)", map[string]string{"g": "sym code _g ; int g(double)"})
	if !strings.Contains(out, "floating-point arguments") {
		t.Fatalf("float args must be rejected:\n%s", out)
	}
}

func TestGenDirect(t *testing.T) {
	g := &gen{tc: conf}
	w := &Where{Kind: "frame", Off: -4}
	sym := &cc.Symbol{Name: "x", Type: cc.IntType, Kind: cc.SymVar, Ext: w}
	e := &cc.Expr{Op: cc.EIdent, Type: cc.IntType, Sym: sym}
	s, err := g.expr(e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "-4 FrameOffset") || !strings.Contains(s, "4 FetchSigned") {
		t.Fatalf("gen = %q", s)
	}
	// char fetches sign-extend with size 1.
	sym2 := &cc.Symbol{Name: "c", Type: cc.CharType, Kind: cc.SymVar, Ext: &Where{Kind: "frame", Off: -8}}
	e2 := &cc.Expr{Op: cc.EIdent, Type: cc.CharType, Sym: sym2}
	s2, _ := g.expr(e2)
	if !strings.Contains(s2, "1 FetchSigned") {
		t.Fatalf("char gen = %q", s2)
	}
	// unsigned fetches without sign extension.
	sym3 := &cc.Symbol{Name: "u", Type: cc.UIntType, Kind: cc.SymVar, Ext: &Where{Kind: "frame", Off: -16}}
	e3 := &cc.Expr{Op: cc.EIdent, Type: cc.UIntType, Sym: sym3}
	s3, _ := g.expr(e3)
	if !strings.Contains(s3, "4 FetchInt") {
		t.Fatalf("uint gen = %q", s3)
	}
}

func TestPointerScaling(t *testing.T) {
	g := &gen{tc: conf}
	p := &cc.Symbol{Name: "p", Type: cc.PtrTo(cc.IntType), Kind: cc.SymVar, Ext: &Where{Kind: "frame", Off: 8}}
	pe := &cc.Expr{Op: cc.EIdent, Type: p.Type, Sym: p}
	sum := &cc.Expr{Op: cc.EAdd, Type: p.Type, L: pe, R: &cc.Expr{Op: cc.EConst, Type: cc.IntType, IVal: 3}}
	s, err := g.expr(sum)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "3 4 mul") {
		t.Fatalf("no scaling: %q", s)
	}
}
