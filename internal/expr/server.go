// Package expr implements ldb's expression server (§3): a variant of
// the compiler front end running in its own goroutine (standing in for
// the paper's separate address space), connected to the debugger by two
// pipes as in Fig. 3. The debugger sends each expression as a string;
// the server parses and typechecks it, asking the debugger for unknown
// identifiers by writing "/name ExpressionServer.lookup" on its output
// — PostScript the debugger interprets — and reading back a sequence of
// C tokens describing the symbol. The typed tree is then rewritten as a
// PostScript procedure (not passed to the compiler back end), followed
// by "ExpressionServer.result", which tells ldb to stop listening.
//
// Like the paper's prototype, the server cannot evaluate expressions
// that include procedure calls into the target process (§7.1).
package expr

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"ldb/internal/cc"
)

// Where describes a symbol's location as sent by the debugger.
type Where struct {
	Kind   string // "frame", "anchor", "global", "code", "absolute"
	Label  string // anchor or global label
	Idx    int    // anchor word index
	Off    int32  // frame offset or absolute address
	SpaceC byte   // space for "absolute"
}

// Server is the expression-server side of the two pipes.
type Server struct {
	tc  *cc.TargetConf
	req *bufio.Reader // expressions and lookup replies, from ldb
	out io.Writer     // PostScript, to ldb

	// typeCache survives across expressions (the server saves type
	// information until the user switches target programs, §3).
	typeCache map[string]*cc.Symbol
}

// NewServer returns a server for one target program.
func NewServer(tc *cc.TargetConf, req io.Reader, out io.Writer) *Server {
	return &Server{tc: tc, req: bufio.NewReader(req), out: out, typeCache: make(map[string]*cc.Symbol)}
}

// Serve processes requests until the request pipe closes.
func (s *Server) Serve() {
	for {
		line, err := s.req.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "expr "):
			s.serveExpr(strings.TrimPrefix(line, "expr "))
		case line == "reset":
			// Target program switched: discard saved type information.
			s.typeCache = make(map[string]*cc.Symbol)
		case line == "newscope":
			// The debugger moved to a different stopping point or frame:
			// frame-relative bindings are scope-dependent (a shadowed
			// local may map the same name to a different offset), so only
			// they are discarded; types of globals survive (§3).
			//ldb:allow detstate deleting from the ranged map is order-insensitive: the surviving set is the same whatever order entries are visited
			for name, sym := range s.typeCache {
				if w, ok := sym.Ext.(*Where); ok && w.Kind == "frame" {
					delete(s.typeCache, name)
				}
			}
		case line == "quit" || line == "":
			return
		default:
			fmt.Fprintf(s.out, "(%s) ExpressionServer.failed\n", psEscape("bad request"))
		}
	}
}

func (s *Server) fail(msg string) {
	fmt.Fprintf(s.out, "(%s) ExpressionServer.failed\n", psEscape(msg))
}

func (s *Server) serveExpr(text string) {
	p := cc.NewParser(text, "<expr>", s.tc)
	p.Lookup = s.lookup
	e, err := p.ParseExpression()
	if err != nil {
		s.fail(err.Error())
		return
	}
	g := &gen{tc: s.tc}
	body, err := g.expr(e)
	if err != nil {
		s.fail(err.Error())
		return
	}
	// The procedure is written to the pipe and ends up on ldb's stack;
	// ExpressionServer.result stops the listener (§3).
	fmt.Fprintf(s.out, "{ %s }\nExpressionServer.result\n", body)
	// The server discards new symbol-table entries after each
	// expression (the parser dies here) but keeps the type cache.
}

// lookup implements the on-the-fly symbol reconstruction: ask the
// debugger, then rebuild the entry from the C tokens it sends back.
func (s *Server) lookup(name string) *cc.Symbol {
	if sym, ok := s.typeCache[name]; ok {
		return sym
	}
	fmt.Fprintf(s.out, "/%s ExpressionServer.lookup\n", name)
	line, err := s.req.ReadString('\n')
	if err != nil {
		return nil
	}
	line = strings.TrimSpace(line)
	if line == "nosym" || line == "" {
		return nil
	}
	// Reply format: "sym <where-kind> <args...> ; <C declaration>"
	if !strings.HasPrefix(line, "sym ") {
		return nil
	}
	rest := strings.TrimPrefix(line, "sym ")
	semi := strings.Index(rest, " ; ")
	if semi < 0 {
		return nil
	}
	whereDesc, decl := rest[:semi], rest[semi+3:]
	declName, ty, err := cc.ParseDecl(decl, s.tc)
	if err != nil || declName != name {
		return nil
	}
	w := &Where{}
	fields := strings.Fields(whereDesc)
	if len(fields) == 0 {
		return nil
	}
	w.Kind = fields[0]
	switch w.Kind {
	case "frame":
		fmt.Sscanf(fields[1], "%d", &w.Off)
	case "anchor":
		w.Label = fields[1]
		fmt.Sscanf(fields[2], "%d", &w.Idx)
	case "global", "code":
		w.Label = fields[1]
	case "absolute":
		w.SpaceC = fields[1][0]
		fmt.Sscanf(fields[2], "%d", &w.Off)
	default:
		return nil
	}
	kind := cc.SymVar
	if ty.Kind == cc.TyFunc {
		kind = cc.SymFunc
	}
	sym := &cc.Symbol{Name: name, Type: ty, Kind: kind, Ext: w}
	s.typeCache[name] = sym
	return sym
}

// psEscape escapes a message for a PostScript string literal.
func psEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `(`, `\(`, `)`, `\)`, "\n", `\n`)
	return r.Replace(s)
}
