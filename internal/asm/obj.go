// Package asm defines the object format shared by the four back ends
// and the MIPS load-delay-slot scheduler. Object units carry text and
// data with relocations; the linker (package link) combines them.
package asm

import "ldb/internal/arch"

// Section identifies where a symbol lives.
type Section int

// Sections.
const (
	SecText Section = iota
	SecData
	SecUndef // referenced but not defined here
)

func (s Section) String() string {
	switch s {
	case SecText:
		return "text"
	case SecData:
		return "data"
	}
	return "undef"
}

// Sym is a defined symbol in an object unit.
type Sym struct {
	Name   string
	Sec    Section
	Off    int
	Size   int
	Global bool
}

// FuncInfo records a function for the MIPS runtime procedure table:
// the machine has no frame pointer, so ldb learns frame sizes from the
// table in the target's address space (§4.3).
type FuncInfo struct {
	Sym       string
	FrameSize int32
}

// Unit is one assembled object: the output of compiling one
// translation unit (or the runtime library) for one target.
type Unit struct {
	Name       string
	Arch       string
	Text       []byte
	TextRelocs []arch.Reloc
	Data       []byte
	DataRelocs []arch.Reloc
	Syms       []Sym
	Funcs      []FuncInfo
	// Instrs counts machine instructions in Text (the four targets
	// have different instruction widths, so byte counts don't compare).
	Instrs int
}

// AddSym appends a symbol definition.
func (u *Unit) AddSym(name string, sec Section, off, size int, global bool) {
	u.Syms = append(u.Syms, Sym{Name: name, Sec: sec, Off: off, Size: size, Global: global})
}

// FindSym looks a symbol up by name.
func (u *Unit) FindSym(name string) (Sym, bool) {
	for _, s := range u.Syms {
		if s.Name == name {
			return s, true
		}
	}
	return Sym{}, false
}
