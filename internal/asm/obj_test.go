package asm

import "testing"

func TestSymTable(t *testing.T) {
	u := &Unit{Name: "u", Arch: "vax"}
	u.AddSym("_f", SecText, 0, 12, true)
	u.AddSym(".local", SecData, 16, 4, false)
	if s, ok := u.FindSym("_f"); !ok || s.Off != 0 || !s.Global || s.Sec != SecText {
		t.Fatalf("find _f: %+v %v", s, ok)
	}
	if s, ok := u.FindSym(".local"); !ok || s.Off != 16 || s.Global {
		t.Fatalf("find .local: %+v %v", s, ok)
	}
	if _, ok := u.FindSym("missing"); ok {
		t.Fatal("found missing symbol")
	}
}

func TestSectionNames(t *testing.T) {
	if SecText.String() != "text" || SecData.String() != "data" || SecUndef.String() != "undef" {
		t.Fatal("section names")
	}
}
