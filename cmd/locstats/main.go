// locstats regenerates the paper's §4.3 table: the lines of
// machine-dependent code per target versus the shared,
// machine-independent remainder, counted from this repository's own
// sources.
package main

import (
	"flag"
	"fmt"
	"os"

	_ "ldb/internal/arch/m68k"
	_ "ldb/internal/arch/mips"
	_ "ldb/internal/arch/sparc"
	_ "ldb/internal/arch/vax"
	"ldb/internal/locstats"
)

func main() {
	root := flag.String("root", ".", "repository root (containing go.mod)")
	flag.Parse()
	dir, err := locstats.FindRoot(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "locstats:", err)
		os.Exit(1)
	}
	table, err := locstats.Collect(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "locstats:", err)
		os.Exit(1)
	}
	fmt.Println("Machine-dependent lines per target vs. shared (cf. §4.3):")
	fmt.Println()
	fmt.Print(locstats.Format(table))
	fmt.Println()
	for _, t := range locstats.Targets {
		fmt.Printf("retargeting %-5s touches %4d lines; ", t, locstats.PerTargetTotal(table, t))
		fmt.Printf("shared code is %.0fx larger\n",
			float64(locstats.SharedTotal(table))/float64(locstats.PerTargetTotal(table, t)))
	}
}
