// Ldbvet runs ldb's retargetability, concurrency, and determinism
// analyzer suite over the module: machdep (machine dependence stays
// behind the arch seam), wireproto (the nub protocol's kind table is
// total), endian (byte-order assumptions stay in the arch tree and the
// wire layer), recoverguard (nub handlers run under panic containment),
// lockorder (declared //ldb:lock ranks are acquired in increasing
// order, no cycles), atomicity (fields touched through sync/atomic are
// never accessed plainly), detstate (//ldb:deterministic call trees
// stay replay-deterministic), and wirecompat (//ldb:wire-body reply
// structs are append-only with symmetric codecs). It exits 1 if any
// finding is not suppressed by a //ldb:allow annotation.
//
// Usage:
//
//	go run ./cmd/ldbvet ./...
//	go run ./cmd/ldbvet -json ./...
//	go run ./cmd/ldbvet -fix ./...     # show stale //ldb:allow removals
//	go run ./cmd/ldbvet -fix -w ./...  # apply them
//
// The suite always analyzes the whole module containing the working
// directory (or -root); package patterns are accepted for familiarity
// but the boundary being checked is module-wide by nature.
package main

import (
	"flag"
	"fmt"
	"os"

	"ldb/internal/analysis"

	// The analyzers are parameterized by machine-dependent data — the
	// opcode fingerprints — derived from the arch registry. Linking the
	// targets in is the build's job, here as in the debugger (§6).
	_ "ldb/internal/arch/m68k"
	_ "ldb/internal/arch/mips"
	_ "ldb/internal/arch/sparc"
	_ "ldb/internal/arch/vax"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the machine-readable report")
	rootFlag := flag.String("root", "", "module root (default: the module containing the working directory)")
	fix := flag.Bool("fix", false, "plan removal of stale //ldb:allow annotations and print the diff")
	write := flag.Bool("w", false, "with -fix: write the planned removals to the source files")
	flag.Parse()

	root := *rootFlag
	if root == "" {
		var err error
		root, err = analysis.FindRoot(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ldbvet:", err)
			os.Exit(2)
		}
	}
	repo, err := analysis.Load(analysis.Config{
		Root:         root,
		Fingerprints: analysis.ArchFingerprints(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldbvet:", err)
		os.Exit(2)
	}
	diags := analysis.RunSuite(repo)
	if *fix {
		fixes, err := analysis.PlanFixes(root, diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ldbvet:", err)
			os.Exit(2)
		}
		if len(fixes) == 0 {
			fmt.Println("ldbvet: no stale //ldb:allow annotations")
			return
		}
		for _, f := range fixes {
			fmt.Print(f.Diff())
		}
		if !*write {
			fmt.Println("ldbvet: dry run; re-run with -fix -w to apply")
			return
		}
		if err := analysis.Apply(root, fixes); err != nil {
			fmt.Fprintln(os.Stderr, "ldbvet:", err)
			os.Exit(2)
		}
		n := 0
		for _, f := range fixes {
			n += len(f.Edits)
		}
		fmt.Printf("ldbvet: removed %d stale allow(s) in %d file(s)\n", n, len(fixes))
		return
	}
	if *jsonOut {
		out, err := analysis.FormatJSON(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ldbvet:", err)
			os.Exit(2)
		}
		os.Stdout.Write(append(out, '\n'))
	} else {
		fmt.Print(analysis.Format(diags))
	}
	if len(analysis.Failing(diags)) > 0 {
		os.Exit(1)
	}
}
