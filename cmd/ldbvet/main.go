// Ldbvet runs ldb's retargetability analyzer suite over the module:
// machdep (machine dependence stays behind the arch seam), wireproto
// (the nub protocol's kind table is total), endian (byte-order
// assumptions stay in the arch tree and the wire layer), and
// recoverguard (nub handlers run under panic containment). It exits 1
// if any finding is not suppressed by a //ldb:allow annotation.
//
// Usage:
//
//	go run ./cmd/ldbvet ./...
//	go run ./cmd/ldbvet -json ./...
//
// The suite always analyzes the whole module containing the working
// directory (or -root); package patterns are accepted for familiarity
// but the boundary being checked is module-wide by nature.
package main

import (
	"flag"
	"fmt"
	"os"

	"ldb/internal/analysis"

	// The analyzers are parameterized by machine-dependent data — the
	// opcode fingerprints — derived from the arch registry. Linking the
	// targets in is the build's job, here as in the debugger (§6).
	_ "ldb/internal/arch/m68k"
	_ "ldb/internal/arch/mips"
	_ "ldb/internal/arch/sparc"
	_ "ldb/internal/arch/vax"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the machine-readable report")
	rootFlag := flag.String("root", "", "module root (default: the module containing the working directory)")
	flag.Parse()

	root := *rootFlag
	if root == "" {
		var err error
		root, err = analysis.FindRoot(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ldbvet:", err)
			os.Exit(2)
		}
	}
	repo, err := analysis.Load(analysis.Config{
		Root:         root,
		Fingerprints: analysis.ArchFingerprints(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldbvet:", err)
		os.Exit(2)
	}
	diags := analysis.RunSuite(repo)
	if *jsonOut {
		out, err := analysis.FormatJSON(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ldbvet:", err)
			os.Exit(2)
		}
		os.Stdout.Write(append(out, '\n'))
	} else {
		fmt.Print(analysis.Format(diags))
	}
	if len(analysis.Failing(diags)) > 0 {
		os.Exit(1)
	}
}
