// experiments regenerates every measured table in the paper's
// evaluation (see EXPERIMENTS.md for the index):
//
//	-t1   §4.3 machine-dependent LoC table (via internal/locstats)
//	-t2   §7 startup/connect timing table (with the stabs baseline)
//	-e1   §3 no-op stopping-point code growth per target
//	-e2   §3 MIPS restricted-scheduling penalty
//	-e3   §7 symbol-table size: PostScript vs stabs, raw and compressed
//	-e4   §5 deferral: symbol-table read time, deferred vs eager
//
// With no flags, everything runs.
package main

import (
	"bytes"
	"compress/lzw"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	_ "ldb/internal/arch/m68k"
	_ "ldb/internal/arch/mips"
	_ "ldb/internal/arch/sparc"
	_ "ldb/internal/arch/vax"
	"ldb/internal/cc"
	"ldb/internal/core"
	"ldb/internal/driver"
	"ldb/internal/link"
	"ldb/internal/locstats"
	"ldb/internal/machine"
	"ldb/internal/nub"
	"ldb/internal/ps"
	"ldb/internal/stab"
	"ldb/internal/symtab"
	"ldb/internal/workload"
)

var targets = []string{"mips", "mipsbe", "sparc", "m68k", "vax"}

func main() {
	t1 := flag.Bool("t1", false, "LoC table")
	t2 := flag.Bool("t2", false, "startup timings")
	e1 := flag.Bool("e1", false, "no-op growth")
	e2 := flag.Bool("e2", false, "scheduling penalty")
	e3 := flag.Bool("e3", false, "symbol-table sizes")
	e4 := flag.Bool("e4", false, "deferral timing")
	bigLines := flag.Int("big", 13000, "size of the lcc-sized program in source lines")
	flag.Parse()
	all := !(*t1 || *t2 || *e1 || *e2 || *e3 || *e4)
	if all || *t1 {
		runT1()
	}
	if all || *t2 {
		runT2(*bigLines)
	}
	if all || *e1 {
		runE1()
	}
	if all || *e2 {
		runE2()
	}
	if all || *e3 {
		runE3(*bigLines)
	}
	if all || *e4 {
		runE4(*bigLines)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func build(archName, name, src string, debug, sched bool) *driver.Program {
	prog, err := driver.Build([]driver.Source{{Name: name, Text: src}},
		driver.Options{Arch: archName, Debug: debug, Sched: sched})
	check(err)
	return prog
}

func runT1() {
	fmt.Println("== T1: machine-dependent code per target (cf. the §4.3 table) ==")
	root, err := locstats.FindRoot(".")
	if err != nil {
		fmt.Println("   (skipped: run from inside the repository:", err, ")")
		return
	}
	table, err := locstats.Collect(root)
	check(err)
	fmt.Print(locstats.Format(table))
	fmt.Println()
}

// median3 runs f three times and reports the median duration.
func median3(f func()) time.Duration {
	var ds []time.Duration
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		ds = append(ds, time.Since(start))
	}
	if ds[0] > ds[1] {
		ds[0], ds[1] = ds[1], ds[0]
	}
	if ds[1] > ds[2] {
		ds[1], ds[2] = ds[2], ds[1]
	}
	if ds[0] > ds[1] {
		ds[0], ds[1] = ds[1], ds[0]
	}
	return ds[1]
}

func runT2(bigLines int) {
	fmt.Println("== T2: startup and connect times (cf. the §7 table) ==")
	hello := build("mips", "hello.c", workload.Hello, true, false)
	big := build("mips", "lcc.c", workload.Big(bigLines), true, false)
	bigSparc := build("sparc", "lcc.c", workload.Big(bigLines), true, false)

	row := func(label string, d time.Duration) {
		fmt.Printf("  %-46s %10.3fms\n", label, float64(d.Microseconds())/1000)
	}

	row("interpreter initialization", median3(func() { ps.New() }))
	row("read initial PostScript", median3(func() {
		d, err := core.New(nil)
		check(err)
		_ = d
	}))
	row("read symbol table for hello.c (1 line)", median3(func() {
		_, err := symtab.Load(ps.New(), hello.LoaderPS)
		check(err)
	}))
	row(fmt.Sprintf("read symbol table for lcc-sized (%d lines)", bigLines), median3(func() {
		_, err := symtab.Load(ps.New(), big.LoaderPS)
		check(err)
	}))

	connect := func(progs ...*driver.Program) func() {
		return func() {
			d, err := core.New(nil)
			check(err)
			for i, prog := range progs {
				client, _, _, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
				check(err)
				_, err = d.AttachClient(fmt.Sprintf("t%d", i), client, prog.LoaderPS)
				check(err)
			}
		}
	}
	row("connect to hello.c (one machine)", median3(connect(hello)))
	row("connect to lcc-sized (one machine)", median3(connect(big)))
	row("connect to lcc-sized (two MIPS machines)", median3(connect(big, big)))
	row("connect to lcc-sized (MIPS and SPARC)", median3(connect(big, bigSparc)))

	// Network attach, for the flavor of debugging over the wire.
	row("connect to hello.c over TCP", median3(func() {
		p := machine.New(hello.Arch, hello.Image.Text, hello.Image.Data, hello.Image.Entry)
		n := nub.New(p)
		n.Start()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		check(err)
		go n.ServeListener(l)
		d, err := core.New(nil)
		check(err)
		client, conn, err := nub.Dial(l.Addr().String())
		check(err)
		_, err = d.AttachClient("net", client, hello.LoaderPS)
		check(err)
		conn.Close()
		l.Close()
	}))

	// The dbx/gdb baseline: binary stabs parse much faster (§7 shows
	// dbx and gdb starting in a fraction of ldb's time).
	tc := &cc.TargetConf{Name: "mips", LDoubleSize: 8}
	unit, err := cc.Compile(workload.Big(bigLines), "lcc.c", tc)
	check(err)
	stabs := stab.Emit([]*cc.Unit{unit})
	row("dbx/gdb baseline: read stabs for lcc-sized", median3(func() {
		_, err := stab.Read(stabs)
		check(err)
	}))
	fmt.Println()
}

func runE1() {
	fmt.Println("== E1: no-op stopping points grow the code (§3: 16-19% on the paper's targets) ==")
	fmt.Printf("  %-8s", "")
	for _, name := range workload.Names {
		fmt.Printf("%9s", name)
	}
	fmt.Printf("%9s\n", "overall")
	for _, t := range targets {
		fmt.Printf("  %-8s", t)
		tot, totDbg := 0, 0
		for _, name := range workload.Names {
			plain := build(t, name, workload.Programs[name], false, false)
			debug := build(t, name, workload.Programs[name], true, false)
			p, d := driver.TextWords(plain), driver.TextWords(debug)
			tot += p
			totDbg += d
			fmt.Printf("%8.1f%%", 100*float64(d-p)/float64(p))
		}
		fmt.Printf("%8.1f%%\n", 100*float64(totDbg-tot)/float64(tot))
	}
	fmt.Println()
}

func runE2() {
	fmt.Println("== E2: restricted scheduling on the MIPS (§3: 13% on the paper's testbed) ==")
	fmt.Printf("  %-8s %8s %8s %8s %8s %10s\n", "program", "fill", "pad", "fill -g", "pad -g", "extra nops")
	totPlain, totDebug, totInstr := 0, 0, 0
	for _, name := range workload.Names {
		src := workload.Programs[name]
		plain := build("mips", name, src, false, true)
		debug := build("mips", name, src, true, true)
		fmt.Printf("  %-8s %8d %8d %8d %8d %10d\n", name,
			plain.SchedFilled, plain.SchedPadded, debug.SchedFilled, debug.SchedPadded,
			debug.SchedPadded-plain.SchedPadded)
		totPlain += plain.SchedPadded
		totDebug += debug.SchedPadded
		totInstr += driver.TextWords(plain)
	}
	fmt.Printf("  scheduling restricted by debugging adds %d no-ops (%.1f%% of %d instructions)\n",
		totDebug-totPlain, 100*float64(totDebug-totPlain)/float64(totInstr), totInstr)
	fmt.Println("  (our accumulator-style code generator exposes far less parallelism than")
	fmt.Println("   MIPS compilers of the era, so the magnitude is smaller; the direction —")
	fmt.Println("   debugging defeats slot filling — is the paper's point)")
	fmt.Println()
}

func compressLen(b []byte) int {
	var buf bytes.Buffer
	w := lzw.NewWriter(&buf, lzw.LSB, 8)
	w.Write(b)
	w.Close()
	return buf.Len()
}

func runE3(bigLines int) {
	fmt.Println("== E3: symbol-table sizes (§7: PostScript ≈ 9x stabs raw, ≈ 2x compressed) ==")
	tc := &cc.TargetConf{Name: "sparc", LDoubleSize: 8}
	for _, lines := range []int{100, 1000, bigLines} {
		unit, err := cc.Compile(workload.Big(lines), "big.c", tc)
		check(err)
		stabs := stab.Emit([]*cc.Unit{unit})
		pts := []byte(symtab.EmitProgramPS([]*cc.Unit{unit}, "sparc"))
		fmt.Printf("  %6d lines: PostScript %8d B, stabs %7d B, raw ratio %4.1f, compressed ratio %4.1f\n",
			lines, len(pts), len(stabs),
			float64(len(pts))/float64(len(stabs)),
			float64(compressLen(pts))/float64(compressLen(stabs)))
	}
	fmt.Println()
}

func runE4(bigLines int) {
	fmt.Println("== E4: deferral of lexical analysis (§5: reduces read time by 40%) ==")
	tc := &cc.TargetConf{Name: "sparc", LDoubleSize: 8}
	unit, err := cc.Compile(workload.Big(bigLines), "big.c", tc)
	check(err)
	prog := build("sparc", "big.c", workload.Big(bigLines), true, false)
	eagerPS := link.LoaderPS(prog.Image, symtab.EmitProgramPSOpts([]*cc.Unit{unit}, "sparc", false))
	deferPS := link.LoaderPS(prog.Image, symtab.EmitProgramPSOpts([]*cc.Unit{unit}, "sparc", true))
	eager := median3(func() {
		_, err := symtab.Load(ps.New(), eagerPS)
		check(err)
	})
	deferred := median3(func() {
		_, err := symtab.Load(ps.New(), deferPS)
		check(err)
	})
	fmt.Printf("  eager read    %10.3fms\n", float64(eager.Microseconds())/1000)
	fmt.Printf("  deferred read %10.3fms\n", float64(deferred.Microseconds())/1000)
	fmt.Printf("  deferral saves %.0f%% of the read time\n", 100*(1-float64(deferred)/float64(eager)))
	fmt.Println()
}
