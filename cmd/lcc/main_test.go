package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ldb/internal/arch"
	"ldb/internal/link"
	"ldb/internal/ps"
	"ldb/internal/symtab"
)

// TestDriverCLI drives the compiler the way a user would: flags in,
// image and loader table out, and the image actually runs.
func TestDriverCLI(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "hello.c")
	if err := os.WriteFile(src, []byte("int main() { printf(\"hi\\n\"); return 0; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "hello")
	os.Args = []string{"lcc", "-arch", "mips", "-g", "-sched", "-stats", "-o", out, src}
	flag.CommandLine = flag.NewFlagSet("lcc", flag.ExitOnError)
	main()

	raw, err := os.ReadFile(out + ".img")
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.DecodeImage(raw)
	if err != nil {
		t.Fatal(err)
	}
	p := link.NewProcess(img)
	f := p.Run()
	// A -g image pauses for the nub before main; step past the pause
	// trap as the nub would.
	if f.Sig == arch.SigTrap && f.Code == arch.TrapPause {
		p.SetPC(f.PC + f.Len)
		f = p.Run()
	}
	if f.Kind != arch.FaultHalt {
		t.Fatalf("image died: %v", f)
	}
	if got := p.Stdout.String(); got != "hi\n" {
		t.Fatalf("output = %q", got)
	}
	loader, err := os.ReadFile(out + ".ldb")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := symtab.Load(ps.New(), string(loader))
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if a, err := tbl.Architecture(); err != nil || a != "mips" {
		t.Fatalf("architecture = %q (%v)", a, err)
	}
}
