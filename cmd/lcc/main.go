// lcc is the compiler driver: it compiles C sources for one of the
// four simulated targets and links them with the runtime, producing an
// executable image and — when compiling for debugging — the loader
// table with machine-independent PostScript symbol tables (§2, §3).
//
// Usage:
//
//	lcc -arch sparc [-g] [-sched] [-o prog] file.c...
//
// Outputs prog.img (the executable image) and, with -g, prog.ldb (the
// loader-table PostScript ldb reads).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ldb/internal/arch"
	_ "ldb/internal/arch/m68k"
	_ "ldb/internal/arch/mips"
	_ "ldb/internal/arch/sparc"
	_ "ldb/internal/arch/vax"
	"ldb/internal/driver"
	"ldb/internal/link"
)

func main() {
	archName := flag.String("arch", "sparc", "target architecture: "+strings.Join(arch.Names(), ", "))
	debug := flag.Bool("g", false, "compile for debugging: stopping-point no-ops, anchors, PostScript symbol tables")
	sched := flag.Bool("sched", false, "run the MIPS load-delay-slot scheduler")
	out := flag.String("o", "a", "output name (writes <name>.img and, with -g, <name>.ldb)")
	stats := flag.Bool("stats", false, "print instruction counts and scheduling statistics")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "lcc: no input files")
		os.Exit(2)
	}
	var sources []driver.Source
	for _, path := range flag.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		sources = append(sources, driver.Source{Name: filepath.Base(path), Text: string(text)})
	}
	prog, err := driver.Build(sources, driver.Options{Arch: *archName, Debug: *debug, Sched: *sched})
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out+".img", link.EncodeImage(prog.Image), 0o644); err != nil {
		fatal(err)
	}
	if *debug {
		if err := os.WriteFile(*out+".ldb", []byte(prog.LoaderPS), 0o644); err != nil {
			fatal(err)
		}
	}
	if *stats {
		fmt.Printf("%s: %d instructions, %d bytes text, %d bytes data\n",
			*out, driver.TextWords(prog), len(prog.Image.Text), len(prog.Image.Data))
		if *sched {
			fmt.Printf("scheduler: %d delay slots filled, %d padded with no-ops\n",
				prog.SchedFilled, prog.SchedPadded)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lcc:", err)
	os.Exit(1)
}
