// scenarios runs the differential scenario corpus: seeded random C
// programs compiled for every target, debugged over every execution
// and transport mode, with byte-identical transcripts required across
// all of them (see DESIGN.md, "Scenario corpus and differential
// oracles").
//
// Work is scheduled over a ninja-style dependency graph with a
// content-addressed result cache, so a re-run after no changes does no
// compiles and no simulation — it just verifies every diff node is up
// to date.
//
//	scenarios -n 500              # seeds 1..500 against ~/.cache/ldb-scenarios
//	scenarios -n 100 -seed 7000   # seeds 7000..7099
//	scenarios -n 500 -j 16        # 16-way parallel
//	scenarios -cache /tmp/c -n 25 # explicit cache directory
//	scenarios -bench -n 500       # also write BENCH_corpus.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	_ "ldb/internal/arch/m68k"
	_ "ldb/internal/arch/mips"
	_ "ldb/internal/arch/sparc"
	_ "ldb/internal/arch/vax"
	"ldb/internal/corpus"
)

func main() {
	n := flag.Int("n", 25, "number of generated scenarios")
	seed := flag.Int64("seed", 1, "first generator seed (scenarios use seed..seed+n-1)")
	jobs := flag.Int("j", runtime.NumCPU(), "concurrent graph jobs")
	cacheDir := flag.String("cache", defaultCacheDir(), "incremental result cache directory")
	bench := flag.String("bench", "", "write throughput/incrementality stats to this JSON file")
	verbose := flag.Bool("v", false, "print per-run statistics")
	flag.Parse()

	cache, err := corpus.OpenCache(*cacheDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenarios: open cache: %v\n", err)
		os.Exit(1)
	}
	ax := corpus.DefaultAxes()
	g, want := corpus.BuildGraph(*seed, *n, ax)
	start := time.Now()
	st, err := (&corpus.Runner{Cache: cache, Jobs: *jobs}).Run(want)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenarios: %v\n", err)
		os.Exit(1)
	}
	if *verbose || *bench == "" {
		fmt.Printf("scenarios: %d scenarios ok (%d graph nodes, %d executed, %d up to date) in %v\n",
			*n, g.Len(), st.TotalExecuted(), st.UpToDate, elapsed.Round(time.Millisecond))
	}
	if *bench != "" {
		// Measure the incremental guarantee too: an immediate re-run
		// over a fresh graph must restore every diff node from the
		// cache without executing anything.
		_, want2 := corpus.BuildGraph(*seed, *n, ax)
		start2 := time.Now()
		st2, err := (&corpus.Runner{Cache: cache, Jobs: *jobs}).Run(want2)
		elapsed2 := time.Since(start2)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenarios: re-run: %v\n", err)
			os.Exit(1)
		}
		if err := writeBench(*bench, *n, ax, [2]corpus.Stats{st, st2}, [2]time.Duration{elapsed, elapsed2}); err != nil {
			fmt.Fprintf(os.Stderr, "scenarios: write bench: %v\n", err)
			os.Exit(1)
		}
	}
}

// defaultCacheDir keeps incremental state under the user cache
// directory so repeated invocations are incremental by default.
func defaultCacheDir() string {
	if d, err := os.UserCacheDir(); err == nil {
		return filepath.Join(d, "ldb-scenarios")
	}
	return filepath.Join(os.TempDir(), "ldb-scenarios")
}

// writeBench records corpus throughput for the initial run and the
// incremental hit rate of the immediate re-run, in the same flat-JSON
// shape as the other BENCH_ files.
func writeBench(path string, n int, ax corpus.Axes, st [2]corpus.Stats, elapsed [2]time.Duration) error {
	rows := make([]any, 2)
	for i, phase := range []string{"initial", "rerun"} {
		rows[i] = map[string]any{
			"phase":             phase,
			"scenarios":         n,
			"sessions":          n * ax.Sessions(),
			"graph_nodes":       st[i].Nodes,
			"executed_builds":   st[i].Executed["build"],
			"executed_sessions": st[i].Executed["session"],
			"executed_diffs":    st[i].Executed["diff"],
			"up_to_date": st[i].UpToDate,
			// Fraction of wanted diff nodes restored straight from the
			// cache (100 on a clean re-run, 0 on a cold one).
			"incremental_hit_pct": 100 * float64(st[i].UpToDate) / float64(max(n, 1)),
			"elapsed_ms":          elapsed[i].Milliseconds(),
			"scenarios_per_sec": float64(n) / max(elapsed[i].Seconds(), 1e-9),
		}
	}
	b, err := json.MarshalIndent(rows, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func max[T int | float64](a, b T) T {
	if a > b {
		return a
	}
	return b
}
