// ldb is the retargetable source-level debugger. It debugs C programs
// compiled by cmd/lcc with -g for any of the simulated targets, over an
// in-process "child" connection or a network connection to a waiting
// nub, and can debug several targets — on different architectures — in
// one session.
//
// Usage:
//
//	ldb prog.img prog.ldb          debug prog as a child process
//	ldb -attach host:port prog.ldb attach to a nub over the network
//	ldb -attach host:port          attach without symbols (machine-level)
//	ldb -serve :port a.img [b.img ...]
//	                               run a debug service: each image is a
//	                               spawnable program, every connection
//	                               its own session (connect with -attach)
//	ldb -attach host:port -session NAME prog.ldb
//	                               open a fresh session of a registered
//	                               program on a debug service
//
// If the loader table is missing, unreadable, or fails validation, the
// session degrades to machine-level debugging (regs, x, break *ADDR,
// stepi) with a one-line warning instead of exiting.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ldb/internal/amem"
	"ldb/internal/arch"
	_ "ldb/internal/arch/m68k"
	_ "ldb/internal/arch/mips"
	_ "ldb/internal/arch/sparc"
	_ "ldb/internal/arch/vax"
	"ldb/internal/core"
	"ldb/internal/link"
	"ldb/internal/machine"
	"ldb/internal/nub"
	"ldb/internal/ps"
)

func main() {
	attach := flag.String("attach", "", "attach to a nub at host:port")
	serve := flag.String("serve", "", "serve the images as a debug service at this address")
	session := flag.String("session", "", "with -attach: open this registered program as a new session")
	ckpt := flag.Int64("ckpt", 0, "with -serve: checkpoint interval in simulated instructions (0 default, negative disables crash-only protection)")
	ckdir := flag.String("ckdir", "", "with -serve: spill passivated session checkpoints into this directory")
	flag.Parse()

	if *serve != "" {
		serveMode(*serve, *ckpt, *ckdir, flag.Args())
		return
	}

	d, err := core.New(os.Stdout)
	if err != nil {
		fatal(err)
	}
	switch {
	case *attach != "":
		// A missing or unreadable loader table is not fatal: the session
		// starts in machine-level mode instead.
		loader := ""
		if flag.NArg() >= 1 {
			if data, err := os.ReadFile(flag.Arg(0)); err != nil {
				fmt.Fprintln(os.Stderr, "ldb:", err)
			} else {
				loader = string(data)
			}
		}
		client, _, err := nub.Dial(*attach)
		if err != nil {
			fatal(err)
		}
		// Against a debug service, -session NAME spawns a fresh target
		// of a registered program; without it, a connection that landed
		// in the service lobby (no target bound) cannot proceed.
		if *session != "" {
			if !client.Sessions() {
				fatal(fmt.Errorf("-session: %s is not a debug service", *attach))
			}
			if _, err := client.OpenSession(*session); err != nil {
				fatal(err)
			}
		} else if client.Sessions() && client.ArchName == "" {
			fatal(fmt.Errorf("%s is a debug-service lobby: use -session NAME to open a session", *attach))
		}
		_, warning, err := d.AttachDegraded(*attach, client, loader)
		if err != nil {
			fatal(err)
		}
		if warning != "" {
			fmt.Println("ldb:", warning)
		}
	case flag.NArg() >= 2:
		if err := launchChild(d, flag.Arg(0), flag.Arg(1)); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: ldb prog.img prog.ldb | ldb -attach host:port prog.ldb")
		os.Exit(2)
	}
	repl(d)
}

// serveMode runs a debug service on the network: every image on the
// command line is registered as a spawnable program, and each
// connection gets its own session — §4.2's target-is-not-a-child
// arrangement, but for many debuggers at once, with decode caches
// shared between sessions of the same image. The first image also
// runs as the legacy single-session target, so clients that predate
// the session protocol attach to it unchanged. Sessions are crash-only:
// evicted ones passivate into checkpoints (spilled to ckdir if given)
// and resurrect on re-attach; a negative ckpt interval turns all of
// that off.
func serveMode(addr string, ckpt int64, ckdir string, args []string) {
	if len(args) < 1 {
		fatal(fmt.Errorf("usage: ldb -serve :port prog.img [more.img ...]"))
	}
	s := nub.NewService()
	s.CheckpointInterval = ckpt
	s.PassivateDir = ckdir
	var names []string
	for i, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		img, err := link.DecodeImage(data)
		if err != nil {
			fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(path), ".img")
		s.Register(name, img.Arch, img.Text, img.Data, img.Entry)
		names = append(names, fmt.Sprintf("%s (%s)", name, img.Arch.Name()))
		if i == 0 {
			p := machine.New(img.Arch, img.Text, img.Data, img.Entry)
			n := nub.New(p)
			n.Start()
			s.SetLegacyTarget(n)
		}
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("debug service listening on %s\n", l.Addr())
	fmt.Printf("programs: %s\n", strings.Join(names, ", "))
	fmt.Printf("first attach gets the paused %s target; -session NAME opens more\n", names[0])
	s.ServeListener(l)
}

func launchChild(d *core.Debugger, imgPath, ldbPath string) error {
	data, err := os.ReadFile(imgPath)
	if err != nil {
		return err
	}
	img, err := link.DecodeImage(data)
	if err != nil {
		return err
	}
	// A broken loader table degrades the session rather than ending it.
	loader := ""
	if data, err := os.ReadFile(ldbPath); err != nil {
		fmt.Fprintln(os.Stderr, "ldb:", err)
	} else {
		loader = string(data)
	}
	client, _, proc, err := nub.Launch(img.Arch, img.Text, img.Data, img.Entry)
	if err != nil {
		return err
	}
	tgt, warning, err := d.AttachDegraded(imgPath, client, loader)
	if err != nil {
		return err
	}
	if warning != "" {
		fmt.Println("ldb:", warning)
	}
	tgt.Stdout = &proc.Stdout
	fmt.Printf("%s (%s) stopped before main\n", imgPath, img.Arch.Name())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ldb:", err)
	os.Exit(1)
}

const helpText = `commands:
  break PROC | break FILE:LINE | break PROC@N   plant a breakpoint
  break *ADDR                                   breakpoint at a raw code address
  clear                                         remove all breakpoints
  stops PROC                                    list stopping points
  cond PROC@N EXPR                              conditional breakpoint
  recover                                       adopt breakpoints left by a lost debugger
  continue (c)                                  resume (honoring conditions)
  step (s) | next (n) | finish                  source-level stepping
  stepi (si)                                    step one machine instruction
  x ADDR [LEN]                                  dump raw target memory
  print NAME (p)                                print a variable via its type's printer
  eval EXPR (e) | = EXPR                        evaluate through the expression server
                                                (assignments and procedure calls included)
  where (bt)                                    walk the stack
  frame N                                       select a frame
  regs                                          show the frame's registers
  dag                                           show the frame's abstract-memory DAG
  stats [reset]                                 show (or zero) wire, simulator, and service statistics
  batch on|off | cache on|off                   toggle wire batching / memory cache
  wire [timeout DUR | retry N]                  show or set wire deadline / reconnect retries
  targets | target N                            list / switch targets
  ps CODE                                       run raw PostScript
  detach | kill | quit                          end the session
`

func repl(d *core.Debugger) {
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("(ldb) ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if quit := command(d, line); quit {
				return
			}
		}
		fmt.Print("(ldb) ")
	}
}

func command(d *core.Debugger, line string) bool {
	t := d.Current()
	fields := strings.Fields(line)
	cmd, rest := fields[0], strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
	say := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	need := func() bool {
		if t == nil {
			say("no target")
			return false
		}
		return true
	}
	switch cmd {
	case "help", "h":
		fmt.Print(helpText)
	case "quit", "q":
		return true
	case "break", "b":
		if !need() {
			return false
		}
		switch {
		case strings.HasPrefix(rest, "*"):
			a, err := strconv.ParseUint(strings.TrimPrefix(rest, "*"), 0, 32)
			if err != nil {
				say("bad address")
				return false
			}
			if err := t.BreakAddr(uint32(a)); err != nil {
				say("%v", err)
				return false
			}
			say("breakpoint at %#x", uint32(a))
		case strings.Contains(rest, ":"):
			i := strings.LastIndex(rest, ":")
			n, err := strconv.Atoi(rest[i+1:])
			if err != nil {
				say("bad line number")
				return false
			}
			addrs, err := t.BreakLine(rest[:i], n)
			if err != nil {
				say("%v", err)
				return false
			}
			for _, a := range addrs {
				say("breakpoint at %#x", a)
			}
		case strings.Contains(rest, "@"):
			i := strings.Index(rest, "@")
			n, err := strconv.Atoi(rest[i+1:])
			if err != nil {
				say("bad stopping point")
				return false
			}
			addr, err := t.BreakStop(rest[:i], n)
			if err != nil {
				say("%v", err)
				return false
			}
			say("breakpoint at %#x (stop %d of %s)", addr, n, rest[:i])
		default:
			addr, err := t.BreakProc(rest)
			if err != nil {
				say("%v", err)
				return false
			}
			say("breakpoint at %#x (%s)", addr, rest)
		}
	case "clear":
		if need() {
			if err := t.Bpts.RemoveAll(); err != nil {
				say("%v", err)
			}
		}
	case "stops":
		if !need() {
			return false
		}
		stops, _, err := t.ProcStops(rest)
		if err != nil {
			say("%v", err)
			return false
		}
		for _, s := range stops {
			say("  %2d  line %d col %d", s.Index, s.Line, s.Col)
		}
	case "continue", "c", "run", "r":
		if !need() {
			return false
		}
		ev, err := t.ContinueConditional()
		if err != nil {
			say("%v", err)
			return false
		}
		report(d, t, ev)
	case "step", "s", "next", "n", "finish":
		if !need() {
			return false
		}
		var ev *nub.Event
		var err error
		switch cmd {
		case "step", "s":
			ev, err = t.Step()
		case "next", "n":
			ev, err = t.Next()
		default:
			ev, err = t.Finish()
		}
		if err != nil {
			say("%v", err)
			return false
		}
		report(d, t, ev)
	case "stepi", "si":
		if !need() {
			return false
		}
		ev, err := t.StepInst()
		if err != nil {
			say("%v", err)
			return false
		}
		report(d, t, ev)
	case "x":
		if !need() {
			return false
		}
		args := strings.Fields(rest)
		if len(args) < 1 || len(args) > 2 {
			say("usage: x ADDR [LEN]")
			return false
		}
		a, err := strconv.ParseUint(args[0], 0, 32)
		if err != nil {
			say("bad address")
			return false
		}
		count := 16
		if len(args) == 2 {
			n, err := strconv.Atoi(args[1])
			if err != nil || n < 1 || n > 4096 {
				say("bad length (1..4096)")
				return false
			}
			count = n
		}
		b, err := t.ExamineBytes(uint32(a), count)
		if err != nil {
			say("%v", err)
			return false
		}
		for off := 0; off < len(b); off += 16 {
			end := off + 16
			if end > len(b) {
				end = len(b)
			}
			var sb strings.Builder
			for i := off; i < end; i++ {
				fmt.Fprintf(&sb, " %02x", b[i])
			}
			say("%#010x %s", uint32(a)+uint32(off), sb.String())
		}
	case "cond":
		if !need() {
			return false
		}
		parts := strings.SplitN(rest, " ", 2)
		if len(parts) != 2 || !strings.Contains(parts[0], "@") {
			say("usage: cond PROC@N EXPR")
			return false
		}
		at := strings.Index(parts[0], "@")
		n, err := strconv.Atoi(parts[0][at+1:])
		if err != nil {
			say("bad stopping point")
			return false
		}
		addr, err := t.BreakStopIf(parts[0][:at], n, parts[1])
		if err != nil {
			say("%v", err)
			return false
		}
		say("conditional breakpoint at %#x when %s", addr, parts[1])
	case "recover":
		if !need() {
			return false
		}
		addrs, err := t.RecoverBreakpoints()
		if err != nil {
			say("%v", err)
			return false
		}
		say("recovered %d breakpoint(s)", len(addrs))
	case "print", "p":
		if !need() {
			return false
		}
		if err := t.Print(rest); err != nil {
			say("%v", err)
		}
	case "eval", "e", "=":
		if !need() {
			return false
		}
		o, err := t.Eval(rest)
		if err != nil {
			say("%v", err)
			return false
		}
		say("%s", ps.Cvs(o))
	case "where", "bt":
		if !need() {
			return false
		}
		bt, _ := t.Backtrace(32)
		for i, name := range bt {
			mark := "  "
			if i == t.CurFrame {
				mark = "* "
			}
			f, _ := t.Frame(i)
			say("%s#%d %s pc=%#x", mark, i, name, f.PC)
		}
	case "frame", "f":
		if !need() {
			return false
		}
		n, err := strconv.Atoi(rest)
		if err != nil {
			say("bad frame number")
			return false
		}
		if err := t.SelectFrame(n); err != nil {
			say("%v", err)
		}
	case "regs":
		if !need() {
			return false
		}
		showRegs(d, t)
	case "dag":
		if !need() {
			return false
		}
		f, err := t.Frame(t.CurFrame)
		if err != nil {
			say("%v", err)
			return false
		}
		fmt.Print(f.Describe())
	case "stats":
		if !need() {
			return false
		}
		if rest == "reset" {
			t.Client.ResetStats()
			say("wire statistics reset")
			return false
		}
		say("%s", t.Client.Stats())
		// The simulator line: a legacy nub refuses the request, and
		// there is simply nothing to report.
		if st, err := t.Client.SimStats(); err == nil {
			say("sim: %d instructions, %d decode-cache hits, %d decodes, %d invalidations, %d fallbacks",
				st.Steps, st.Hits, st.Decodes, st.Invalidations, st.Fallbacks)
			if st.Blocks > 0 {
				say("sim: %d superblocks, %d instructions fused (%.1f per block)",
					st.Blocks, st.BlockInsns, float64(st.BlockInsns)/float64(st.Blocks))
			}
		}
		// Likewise the server robustness line.
		if st, err := t.Client.ServerStats(); err == nil {
			say("server: %d recovered panics, %d malformed frames, %d oversize rejects, %d slow reads, %d ctx faults",
				st.RecoveredPanics, st.MalformedFrames, st.OversizeRejects, st.SlowReads, st.CtxFaults)
		}
		// And the service health line, when the endpoint is a
		// session-multiplexed debug service rather than a plain nub.
		if t.Client.Sessions() {
			if st, err := t.Client.ServiceStats(); err == nil {
				say("service: %d/%d sessions live/peak, %d opened, %d evicted, shared decode cache %d hits / %d misses, %d session / %d total requests",
					st.Live, st.Peak, st.Opened, st.Evicted, st.SharedHits, st.SharedMisses, st.SessionRequests, st.TotalRequests)
				say("crash-only: %d passivated, %d resurrected, %d rollbacks",
					st.Passivated, st.Resurrected, st.Rollbacks)
			}
		}
	case "wire":
		if !need() {
			return false
		}
		args := strings.Fields(rest)
		switch {
		case len(args) == 0:
			say("timeout %v, %d reconnect retries", t.Client.Timeout(), t.Client.Retries())
		case args[0] == "timeout" && len(args) == 2:
			dur, err := time.ParseDuration(args[1])
			if err != nil || dur < 0 {
				say("bad duration %q (try 5s, 500ms; 0 disables)", args[1])
				return false
			}
			t.Client.SetTimeout(dur)
			say("wire timeout %v", dur)
		case args[0] == "retry" && len(args) == 2:
			n, err := strconv.Atoi(args[1])
			if err != nil || n < 1 {
				say("bad retry count %q", args[1])
				return false
			}
			t.Client.SetRetries(n)
			say("wire retry %d", n)
		default:
			say("usage: wire | wire timeout DUR | wire retry N")
			return false
		}
	case "batch", "cache":
		if !need() {
			return false
		}
		var on bool
		switch rest {
		case "on":
			on = true
		case "off":
		default:
			say("usage: %s on|off", cmd)
			return false
		}
		if cmd == "batch" {
			t.Client.SetBatching(on)
			if on && !t.Client.Batching() {
				say("batching requested, but the nub does not support it")
				return false
			}
		} else {
			t.Client.SetCaching(on)
		}
		say("%s %s", cmd, rest)
	case "targets":
		for i, tg := range d.Targets {
			mark := "  "
			if tg == d.Current() {
				mark = "* "
			}
			state := "stopped"
			if tg.Exited {
				state = fmt.Sprintf("exited(%d)", tg.ExitStatus)
			}
			say("%s#%d %s (%s) %s", mark, i, tg.Name, tg.Arch.Name(), state)
		}
	case "target":
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 || n >= len(d.Targets) {
			say("bad target number")
			return false
		}
		d.Switch(d.Targets[n])
		say("now debugging %s (%s)", d.Targets[n].Name, d.Targets[n].Arch.Name())
	case "ps":
		if err := d.In.RunString(rest); err != nil {
			say("%v", err)
		}
	case "detach":
		if need() {
			if err := t.Detach(); err != nil {
				say("%v", err)
			}
		}
	case "kill":
		if need() {
			if err := t.Kill(); err != nil {
				say("%v", err)
			}
		}
	default:
		say("unknown command %q (try help)", cmd)
	}
	return false
}

func report(d *core.Debugger, t *core.Target, ev *nub.Event) {
	if ev.Exited {
		fmt.Printf("target exited with status %d\n", ev.Status)
		if t.Stdout != nil {
			fmt.Printf("--- target output ---\n%s", t.Stdout.String())
		}
		return
	}
	where := fmt.Sprintf("pc=%#x", ev.PC)
	if f, err := t.Frame(0); err == nil {
		where = fmt.Sprintf("%s pc=%#x", f.Proc(), ev.PC)
	}
	switch {
	case t.Bpts.IsPlanted(ev.PC):
		fmt.Printf("breakpoint: %s\n", where)
	case ev.Sig == arch.SigTrap && ev.Code == arch.TrapStep:
		fmt.Printf("stepped: %s\n", where)
	default:
		fmt.Printf("signal %v (code %d): %s\n", ev.Sig, ev.Code, where)
	}
}

func showRegs(d *core.Debugger, t *core.Target) {
	if t.Degraded() {
		regs, pc, err := t.RegsRaw()
		if err != nil {
			fmt.Println(err)
			return
		}
		for i, v := range regs {
			fmt.Printf("%6s %#010x", t.Arch.RegName(i), v)
			if (i+1)%4 == 0 {
				fmt.Println()
			} else {
				fmt.Print("  ")
			}
		}
		fmt.Printf("\n%6s %#010x\n", "pc", pc)
		return
	}
	f, err := t.Frame(t.CurFrame)
	if err != nil {
		fmt.Println(err)
		return
	}
	for i := 0; i < t.Arch.NumRegs(); i++ {
		v, err := f.Mem.FetchInt(amem.Abs(amem.Reg, int64(i)), 4)
		if err != nil {
			continue // unaliased in this frame
		}
		fmt.Printf("%6s %#010x", t.Arch.RegName(i), v)
		if (i+1)%4 == 0 {
			fmt.Println()
		} else {
			fmt.Print("  ")
		}
	}
	fmt.Printf("\n%6s %#010x\n", "pc", f.PC)
}
