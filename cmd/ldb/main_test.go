package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldb/internal/core"
	"ldb/internal/driver"
	"ldb/internal/link"
	"ldb/internal/nub"
	"ldb/internal/workload"
)

// session builds fib for archName, attaches a debugger, and returns a
// function that runs one REPL command and returns everything printed.
func session(t *testing.T, archName string) (func(string) string, *core.Debugger) {
	t.Helper()
	prog, err := driver.Build([]driver.Source{{Name: "fib.c", Text: workload.Fib}},
		driver.Options{Arch: archName, Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	client, _, proc, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.New(os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := d.AttachClient("fib", client, prog.LoaderPS)
	if err != nil {
		t.Fatal(err)
	}
	tgt.Stdout = &proc.Stdout
	run := func(line string) string {
		t.Helper()
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		d.In.Stdout = w
		command(d, line)
		w.Close()
		os.Stdout = old
		d.In.Stdout = old
		var buf bytes.Buffer
		io.Copy(&buf, r)
		return buf.String()
	}
	return run, d
}

func TestREPLSession(t *testing.T) {
	run, _ := session(t, "sparc")
	if out := run("break fib@7"); !strings.Contains(out, "breakpoint at 0x") {
		t.Fatalf("break: %q", out)
	}
	if out := run("continue"); !strings.Contains(out, "breakpoint: _fib") {
		t.Fatalf("continue: %q", out)
	}
	if out := run("print i"); strings.TrimSpace(out) != "2" {
		t.Fatalf("print i: %q", out)
	}
	if out := run("print a"); !strings.Contains(out, "{1, 1, 0") {
		t.Fatalf("print a: %q", out)
	}
	if out := run("= a[i-1] + a[i-2]"); strings.TrimSpace(out) != "2" {
		t.Fatalf("eval: %q", out)
	}
	if out := run("where"); !strings.Contains(out, "_fib") || !strings.Contains(out, "_main") {
		t.Fatalf("where: %q", out)
	}
	if out := run("regs"); !strings.Contains(out, "i6") || !strings.Contains(out, "pc") {
		t.Fatalf("regs: %q", out)
	}
	if out := run("dag"); !strings.Contains(out, "joined") {
		t.Fatalf("dag: %q", out)
	}
	if out := run("stops fib"); !strings.Contains(out, "13") {
		t.Fatalf("stops: %q", out)
	}
	if out := run("frame 1"); strings.Contains(out, "bad") {
		t.Fatalf("frame: %q", out)
	}
	run("frame 0")
	if out := run("step"); !strings.Contains(out, "_fib") {
		t.Fatalf("step: %q", out)
	}
	if out := run("targets"); !strings.Contains(out, "sparc") {
		t.Fatalf("targets: %q", out)
	}
	if out := run("ps 1 2 add ="); strings.TrimSpace(out) != "3" {
		t.Fatalf("ps: %q", out)
	}
	run("clear")
	if out := run("continue"); !strings.Contains(out, "exited with status 0") ||
		!strings.Contains(out, "1 1 2 3 5 8 13 21 34 55") {
		t.Fatalf("final continue: %q", out)
	}
	if out := run("nonsense"); !strings.Contains(out, "unknown command") {
		t.Fatalf("unknown: %q", out)
	}
	if out := run("help"); !strings.Contains(out, "commands:") {
		t.Fatalf("help: %q", out)
	}
}

func TestREPLConditionalAndEval(t *testing.T) {
	run, _ := session(t, "vax")
	if out := run("cond fib@7 i == 5"); !strings.Contains(out, "conditional breakpoint") {
		t.Fatalf("cond: %q", out)
	}
	run("continue")
	if out := run("print i"); strings.TrimSpace(out) != "5" {
		t.Fatalf("conditional stop: i = %q", out)
	}
	if out := run("eval n = 6"); strings.TrimSpace(out) != "6" {
		t.Fatalf("assign: %q", out)
	}
	if out := run("eval i * 2 + n"); strings.TrimSpace(out) != "16" {
		t.Fatalf("eval: %q", out)
	}
	run("clear")
	// §7.1: with the breakpoints cleared, a procedure call in an
	// evaluated expression runs fib(2) inside the stopped target.
	if out := run("eval fib(2)"); strings.Contains(out, "error") {
		t.Fatalf("call: %q", out)
	}
	if out := run("continue"); !strings.Contains(out, "1 1 2 3 5 8") {
		t.Fatalf("final: %q", out)
	}
}

func TestREPLWireCommand(t *testing.T) {
	run, _ := session(t, "mips")
	if out := run("wire"); !strings.Contains(out, "timeout 30s") || !strings.Contains(out, "3 reconnect retries") {
		t.Fatalf("wire defaults: %q", out)
	}
	if out := run("wire timeout 5s"); !strings.Contains(out, "wire timeout 5s") {
		t.Fatalf("wire timeout: %q", out)
	}
	if out := run("wire retry 8"); !strings.Contains(out, "wire retry 8") {
		t.Fatalf("wire retry: %q", out)
	}
	if out := run("wire"); !strings.Contains(out, "timeout 5s") || !strings.Contains(out, "8 reconnect retries") {
		t.Fatalf("wire after set: %q", out)
	}
	if out := run("wire timeout soon"); !strings.Contains(out, "bad duration") {
		t.Fatalf("bad duration: %q", out)
	}
	if out := run("wire retry 0"); !strings.Contains(out, "bad retry count") {
		t.Fatalf("bad retry: %q", out)
	}
	if out := run("stats"); !strings.Contains(out, "robustness") {
		t.Fatalf("stats without robustness line: %q", out)
	}
}

func TestCLIFilesRoundTrip(t *testing.T) {
	// Exercise the lcc→ldb file workflow: encode the image, decode it,
	// run it.
	prog, err := driver.Build([]driver.Source{{Name: "fib.c", Text: workload.Fib}},
		driver.Options{Arch: "m68k", Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	imgPath := filepath.Join(dir, "fib.img")
	ldbPath := filepath.Join(dir, "fib.ldb")
	if err := os.WriteFile(imgPath, link.EncodeImage(prog.Image), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ldbPath, []byte(prog.LoaderPS), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := core.New(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := launchChild(d, imgPath, ldbPath); err != nil {
		t.Fatal(err)
	}
	tgt := d.Current()
	if tgt == nil || tgt.Arch.Name() != "m68k" {
		t.Fatal("no target after launchChild")
	}
	if _, err := tgt.BreakProc("fib"); err != nil {
		t.Fatal(err)
	}
	if ev, err := tgt.ContinueToBreakpoint(); err != nil || ev.Exited {
		t.Fatalf("%v %v", ev, err)
	}
}
